package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("fresh=1,dup=2,delta=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[classFresh] != 0.25 || w[classDup] != 0.5 || w[classDelta] != 0.25 {
		t.Errorf("weights = %v, want normalized 0.25/0.5/0.25", w)
	}
	for _, bad := range []string{"", "fresh", "warp=1", "fresh=-1", "fresh=0,dup=0,delta=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// Degenerate single-class mixes are fine.
	if w, err := parseMix("dup=3"); err != nil || w[classDup] != 1 {
		t.Errorf("single-class mix: %v, %v", w, err)
	}
}

func TestPickClassRespectsWeights(t *testing.T) {
	w, _ := parseMix("fresh=0.5,dup=0.5,delta=0")
	rng := rand.New(rand.NewSource(1))
	counts := [numClasses]int{}
	for i := 0; i < 10000; i++ {
		counts[pickClass(w, rng)]++
	}
	if counts[classDelta] != 0 {
		t.Errorf("zero-weight class drawn %d times", counts[classDelta])
	}
	if counts[classFresh] < 4000 || counts[classDup] < 4000 {
		t.Errorf("50/50 mix skewed: %v", counts)
	}
}

// TestLoadgenEndToEnd drives the full harness against an in-process
// daemon: mixed workload, JSON report, client/server cross-check.
func TestLoadgenEndToEnd(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Options{}).Handler())
	defer hs.Close()

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-addr", hs.URL,
		"-duration", "400ms",
		"-workers", "3",
		"-bases", "2",
		"-cores", "2", "-tasks-per-core", "3", "-util", "0.3",
		"-mix", "fresh=0.3,dup=0.4,delta=0.3",
		"-json",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\nstderr:\n%s", code, err, errOut.String())
	}

	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests < 3 {
		t.Fatalf("only %d requests in 400ms closed loop", rep.Requests)
	}
	if rep.OK != rep.Requests {
		t.Errorf("ok=%d != requests=%d (shed=%d timeouts=%d errors=%d transport=%d)",
			rep.OK, rep.Requests, rep.Shed, rep.Timeouts, rep.Errors, rep.Transport)
	}
	if rep.Server == nil {
		t.Fatal("report missing server_check")
	}
	if !rep.Server.OK {
		t.Errorf("server cross-check failed: %+v", rep.Server)
	}
	if len(rep.Classes) != 3 {
		t.Errorf("classes = %v, want all three exercised", rep.Classes)
	}
	for name, c := range rep.Classes {
		if c.Count != c.Requests {
			t.Errorf("class %s: %d latency observations for %d requests", name, c.Count, c.Requests)
		}
		if c.P99US < c.P50US || c.P99US <= 0 {
			t.Errorf("class %s: quantiles disordered: %+v", name, c)
		}
	}
	// The mixed workload must have exercised the analyze and cache
	// stages server-side. Stage flushes land after the response write,
	// so the final scrape may miss the last few in-flight requests —
	// assert presence, not exact counts.
	if len(rep.Stages) == 0 {
		t.Fatal("report missing server stage quantiles")
	}
	for _, stage := range []string{"analyze", "cache"} {
		if q, ok := rep.Stages[stage]; !ok || q.Count <= 0 {
			t.Errorf("%s stage quantiles missing: %+v", stage, rep.Stages)
		}
	}
}

// TestLoadgenTextReport exercises the human-readable output and the
// dup-only degenerate mix (pure cache-hit traffic).
func TestLoadgenTextReport(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Options{}).Handler())
	defer hs.Close()

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-addr", hs.URL,
		"-duration", "200ms",
		"-workers", "2",
		"-bases", "1",
		"-cores", "2", "-tasks-per-core", "2", "-util", "0.3",
		"-mix", "dup=1",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\nstderr:\n%s", code, err, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"req/s", "dup", "p99=", "server check: ok", "server stages"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, _ := run(context.Background(), []string{"-mix", "warp=1"}, &out, &errOut); code != 1 {
		t.Errorf("bad mix accepted (code %d)", code)
	}
	if code, _ := run(context.Background(), []string{"-bases", "0"}, &out, &errOut); code != 1 {
		t.Errorf("zero bases accepted (code %d)", code)
	}
	// Unreachable daemon fails at warmup, not silently.
	if code, err := run(context.Background(), []string{"-addr", "http://127.0.0.1:1", "-duration", "50ms"}, &out, &errOut); code != 1 || err == nil {
		t.Errorf("unreachable daemon: code=%d err=%v, want failure", code, err)
	}
}
