// Command loadgen replays synthetic analysis workloads against a
// running buscond and reports client-side latency distributions —
// the measurement harness for the serving layer (DESIGN.md §13).
//
// A workload is a mix of three request classes over a pool of
// generated base task sets:
//
//	fresh  a never-seen-before variant (one task's PD nudged by a
//	       monotone nonce), forcing a full engine analysis
//	dup    a verbatim re-POST of a base request, expecting the result
//	       cache (or coalescing) to answer
//	delta  POST /v1/analyze/delta against a base key with one pd edit,
//	       exercising the incremental path and the engine memo
//
// loadgen runs closed-loop (-workers concurrent clients, each issuing
// the next request as soon as the previous answers) or open-loop
// (-rate requests/s dispatched on a fixed schedule, bounded by
// -max-inflight). Latencies are recorded per class in the same log2
// histograms the daemon uses (internal/telemetry), so client p50/p95/
// p99 and the server's /metrics stage quantiles are directly
// comparable; with -check the client's request and shed counts are
// cross-checked against the server's /metrics counter deltas.
//
// Against a buscond fleet (DESIGN.md §14), -targets spreads every
// request across the member nodes — each fire picks a node uniformly,
// so the run exercises shard-owner routing and peer cache fill from
// every edge. The cross-check then sums /metrics over all nodes
// (shard-owner routing analyzes each request on exactly one node, so
// the fleet-wide totals obey the same invariants as a single daemon)
// and is skipped, not failed, if any peer degradation happened
// mid-run.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -workers 8 \
//	        -mix fresh=0.2,dup=0.6,delta=0.2
//	loadgen -targets 127.0.0.1:8080,127.0.0.1:8081,127.0.0.1:8082 \
//	        -duration 10s -workers 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/taskgen"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// classes of the workload mix, in mix-string order.
var classNames = []string{"fresh", "dup", "delta"}

const (
	classFresh = iota
	classDup
	classDelta
	numClasses
)

// base is one generated task set the workload revolves around: its
// verbatim request body (the dup class), its canonical key (the delta
// class) and the handles needed to synthesize fresh variants.
type base struct {
	ts     *taskmodel.TaskSet
	body   []byte // full /v1/analyze request
	key    string // canonical key learned during warmup
	prio   int    // task 0's unique priority (delta edit selector)
	basePD int64  // task 0's original PD (edit value range)
}

// classStats accumulates one request class's client-side outcomes.
// The histogram records end-to-end latency in microseconds for
// requests that got any HTTP response.
type classStats struct {
	sent      atomic.Int64
	ok        atomic.Int64 // HTTP 200
	shed      atomic.Int64 // HTTP 429
	timeout   atomic.Int64 // HTTP 504
	errored   atomic.Int64 // other HTTP statuses
	transport atomic.Int64 // no HTTP response at all
	lat       telemetry.Histogram
}

// report is the machine-readable run summary (-json).
type report struct {
	DurationS float64                `json:"duration_s"`
	Targets   int                    `json:"targets,omitempty"` // fleet nodes load was spread over (omitted for 1)
	Requests  int64                  `json:"requests"`
	OK        int64                  `json:"ok"`
	Shed      int64                  `json:"shed"`
	Timeouts  int64                  `json:"timeouts"`
	Errors    int64                  `json:"errors"`
	Transport int64                  `json:"transport_errors"`
	Dropped   int64                  `json:"dropped,omitempty"` // open loop: max-inflight exceeded
	ShedRate  float64                `json:"shed_rate"`
	RateRPS   float64                `json:"rate_rps"`
	Classes   map[string]classReport `json:"classes"`
	Server    *serverCheck           `json:"server_check,omitempty"`
	Stages    map[string]quantiles   `json:"server_stages,omitempty"`
	Partial   bool                   `json:"partial,omitempty"` // interrupted before -duration
}

type classReport struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed,omitempty"`
	Timeouts int64 `json:"timeouts,omitempty"`
	Errors   int64 `json:"errors,omitempty"`
	quantiles
}

type quantiles struct {
	Count int64   `json:"count"`
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
	MaxUS int64   `json:"max_us"`
}

func quantilesOf(s telemetry.HistSnapshot) quantiles {
	return quantiles{
		Count: s.Count,
		P50US: s.Quantile(0.50),
		P95US: s.Quantile(0.95),
		P99US: s.Quantile(0.99),
		MaxUS: s.Max,
	}
}

// serverCheck is the client-vs-server accounting cross-check.
type serverCheck struct {
	OK             bool   `json:"ok"`
	Skipped        bool   `json:"skipped,omitempty"`
	Reason         string `json:"reason,omitempty"`
	ServerRequests int64  `json:"server_requests_delta"`
	ClientExpected int64  `json:"client_expected"`
	ServerShed     int64  `json:"server_shed_delta"`
	ClientShed     int64  `json:"client_shed"`
}

// metricsDoc is the slice of the daemon's JSON /metrics document the
// harness consumes. Histograms decode as full snapshots so baseline
// subtraction yields interval quantiles.
type metricsDoc struct {
	Counters   map[string]int64                  `json:"counters"`
	Histograms map[string]telemetry.HistSnapshot `json:"histograms"`
}

func scrape(client *http.Client, addr string) (metricsDoc, error) {
	var doc metricsDoc
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// scrapeAll sums /metrics over every target. Shard-owner routing
// analyzes each request on exactly one node, so the fleet-wide sums
// obey the same accounting invariants the single-node cross-check
// relies on (server.requests counts each analyze exactly once:
// successful proxies increment only peer_proxied at the edge).
func scrapeAll(client *http.Client, targets []string) (metricsDoc, error) {
	sum := metricsDoc{Counters: map[string]int64{}, Histograms: map[string]telemetry.HistSnapshot{}}
	for _, t := range targets {
		doc, err := scrape(client, t)
		if err != nil {
			return sum, fmt.Errorf("%s: %w", t, err)
		}
		for k, v := range doc.Counters {
			sum.Counters[k] += v
		}
		for k, h := range doc.Histograms {
			sum.Histograms[k] = addSnap(sum.Histograms[k], h)
		}
	}
	return sum, nil
}

// addSnap merges two histogram snapshots bucket-wise — the fleet
// analog of observing both nodes' samples in one histogram.
func addSnap(a, b telemetry.HistSnapshot) telemetry.HistSnapshot {
	out := telemetry.HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Max: a.Max}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	out.Buckets = make([]int64, n)
	for i := range out.Buckets {
		if i < len(a.Buckets) {
			out.Buckets[i] += a.Buckets[i]
		}
		if i < len(b.Buckets) {
			out.Buckets[i] += b.Buckets[i]
		}
	}
	return out
}

// parseMix turns "fresh=0.2,dup=0.6,delta=0.2" into normalized class
// weights.
func parseMix(s string) ([numClasses]float64, error) {
	var w [numClasses]float64
	var sum float64
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("mix entry %q: want class=weight", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return w, fmt.Errorf("mix entry %q: bad weight", part)
		}
		idx := -1
		for i, n := range classNames {
			if n == name {
				idx = i
			}
		}
		if idx < 0 {
			return w, fmt.Errorf("mix entry %q: unknown class (want fresh, dup or delta)", part)
		}
		w[idx] = f
		sum += f
	}
	if sum <= 0 {
		return w, fmt.Errorf("mix %q: weights sum to zero", s)
	}
	for i := range w {
		w[i] /= sum
	}
	return w, nil
}

// pickClass draws a class index from the weights.
func pickClass(w [numClasses]float64, rng *rand.Rand) int {
	f := rng.Float64()
	var cum float64
	for i := 0; i < numClasses-1; i++ {
		cum += w[i]
		if f < cum {
			return i
		}
	}
	return numClasses - 1
}

// analyzeBody wraps a task set into a full /v1/analyze request body.
func analyzeBody(ts *taskmodel.TaskSet) ([]byte, error) {
	var tsBuf bytes.Buffer
	if err := ts.WriteJSON(&tsBuf); err != nil {
		return nil, err
	}
	return json.Marshal(map[string]any{
		"taskset": json.RawMessage(tsBuf.Bytes()),
		"configs": []map[string]any{{"arbiter": "fp", "persistence": true}},
	})
}

// freshBody synthesizes a never-seen request: the base with task 0's
// PD set to 1 + nonce mod basePD. Lowering one task's execution
// demand keeps the set valid under every taskmodel constraint while
// the monotone nonce guarantees a canonical key the server has not
// cached (within one run).
func freshBody(b *base, nonce uint64) ([]byte, error) {
	tasks := make([]*taskmodel.Task, len(b.ts.Tasks))
	for i, t := range b.ts.Tasks {
		c := *t
		tasks[i] = &c
	}
	tasks[0].PD = taskmodel.Time(1 + int64(nonce)%b.basePD)
	return analyzeBody(taskmodel.NewTaskSet(b.ts.Platform, tasks))
}

// deltaBody phrases the same pd nudge as an incremental request
// against the base's learned key.
func deltaBody(b *base, nonce uint64) ([]byte, error) {
	return json.Marshal(map[string]any{
		"base_key": b.key,
		"edits": []map[string]any{
			{"priority": b.prio, "field": "pd", "value": 1 + int64(nonce)%b.basePD},
		},
	})
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "buscond base URL")
	targetsStr := fs.String("targets", "", "comma-separated fleet node URLs; overrides -addr, spreading requests across nodes and summing /metrics for the cross-check")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	workers := fs.Int("workers", 4, "closed-loop concurrent clients (ignored when -rate > 0)")
	rate := fs.Float64("rate", 0, "open-loop dispatch rate in requests/s (0 = closed loop)")
	maxInflight := fs.Int("max-inflight", 64, "open-loop bound on concurrent requests; excess dispatches are dropped client-side")
	mixStr := fs.String("mix", "fresh=0.2,dup=0.6,delta=0.2", "request class mix (fresh=duplicate-free, dup=verbatim re-POST, delta=incremental edit)")
	nBases := fs.Int("bases", 4, "distinct base task sets to generate")
	seed := fs.Int64("seed", 1, "RNG seed for task-set generation and the class draw")
	cores := fs.Int("cores", 4, "cores per generated task set")
	perCore := fs.Int("tasks-per-core", 8, "tasks per core")
	util := fs.Float64("util", 0.5, "per-core utilization target")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	check := fs.Bool("check", true, "cross-check client counts against the server's /metrics deltas")
	jsonOut := fs.Bool("json", false, "write the report as JSON to stdout instead of text")
	progress := fs.Duration("progress", 0, "print rolling progress lines to stderr at this interval (0 = off)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		return 1, err
	}
	if *nBases < 1 || *workers < 1 || *maxInflight < 1 {
		return 1, fmt.Errorf("-bases, -workers and -max-inflight must be >= 1")
	}
	targets := []string{strings.TrimRight(*addr, "/")}
	if *targetsStr != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetsStr, ",") {
			t = strings.TrimRight(strings.TrimSpace(t), "/")
			if t == "" {
				continue
			}
			if !strings.Contains(t, "://") {
				t = "http://" + t
			}
			targets = append(targets, t)
		}
		if len(targets) == 0 {
			return 1, fmt.Errorf("-targets: no URLs given")
		}
	}
	client := &http.Client{Timeout: *timeout}

	// Generate the base pool: distinct seeds => distinct task sets =>
	// distinct canonical keys.
	genCfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores: *cores,
			Cache:    taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32},
			DMem:     5,
			SlotSize: 2,
		},
		TasksPerCore:    *perCore,
		CoreUtilization: *util,
	}
	pool, err := taskgen.PoolFromSuite(genCfg.Platform.Cache)
	if err != nil {
		return 1, err
	}
	bases := make([]*base, *nBases)
	for i := range bases {
		ts, err := taskgen.Generate(genCfg, pool, rand.New(rand.NewSource(*seed+int64(i))))
		if err != nil {
			return 1, fmt.Errorf("generating base %d: %w", i, err)
		}
		body, err := analyzeBody(ts)
		if err != nil {
			return 1, err
		}
		bases[i] = &base{ts: ts, body: body, prio: ts.Tasks[0].Priority, basePD: int64(ts.Tasks[0].PD)}
		if bases[i].basePD < 1 {
			bases[i].basePD = 1
		}
	}

	// Warmup: POST each base once to learn its canonical key (the delta
	// class addresses bases by key) and prime the caches the dup class
	// expects to hit. With -targets the warmup round-robins over nodes;
	// shard-owner routing lands each base on its owner either way.
	for i, b := range bases {
		tgt := targets[i%len(targets)]
		resp, err := client.Post(tgt+"/v1/analyze", "application/json", bytes.NewReader(b.body))
		if err != nil {
			return 1, fmt.Errorf("warmup base %d: %w (is buscond running at %s?)", i, err, tgt)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 1, fmt.Errorf("warmup base %d: status %d\n%s", i, resp.StatusCode, data)
		}
		var env struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Key == "" {
			return 1, fmt.Errorf("warmup base %d: no key in response: %v", i, err)
		}
		b.key = env.Key
	}
	if len(targets) == 1 {
		fmt.Fprintf(stderr, "loadgen: %d bases warmed against %s\n", len(bases), targets[0])
	} else {
		fmt.Fprintf(stderr, "loadgen: %d bases warmed against %d fleet nodes\n", len(bases), len(targets))
	}

	// Counter baseline after warmup, so the run-phase deltas cover only
	// generated load (plus any unrelated traffic — the check assumes an
	// otherwise idle daemon).
	var baseline metricsDoc
	if *check {
		if baseline, err = scrapeAll(client, targets); err != nil {
			return 1, fmt.Errorf("baseline scrape: %w", err)
		}
	}

	stats := make([]*classStats, numClasses)
	for i := range stats {
		stats[i] = &classStats{}
	}
	var total classStats
	var nonce atomic.Uint64
	var dropped atomic.Int64

	// fire issues one request of the given class against the given
	// target node and records the outcome. rng use is confined to the
	// caller (class, base and target indices are passed in).
	fire := func(class, baseIdx, tgtIdx int) {
		b := bases[baseIdx]
		var path string
		var body []byte
		var err error
		switch class {
		case classFresh:
			path, body, err = "/v1/analyze", nil, nil
			body, err = freshBody(b, nonce.Add(1))
		case classDup:
			path, body = "/v1/analyze", b.body
		case classDelta:
			path, body, err = "/v1/analyze/delta", nil, nil
			body, err = deltaBody(b, nonce.Add(1))
		}
		if err != nil {
			stats[class].transport.Add(1)
			total.transport.Add(1)
			return
		}
		stats[class].sent.Add(1)
		total.sent.Add(1)
		start := time.Now()
		resp, err := client.Post(targets[tgtIdx]+path, "application/json", bytes.NewReader(body))
		if err != nil {
			stats[class].transport.Add(1)
			total.transport.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		us := time.Since(start).Microseconds()
		stats[class].lat.Observe(us)
		total.lat.Observe(us)
		var ok, shed, to *atomic.Int64
		switch resp.StatusCode {
		case http.StatusOK:
			ok = &stats[class].ok
		case http.StatusTooManyRequests:
			shed = &stats[class].shed
		case http.StatusGatewayTimeout:
			to = &stats[class].timeout
		default:
			stats[class].errored.Add(1)
			total.errored.Add(1)
		}
		if ok != nil {
			ok.Add(1)
			total.ok.Add(1)
		}
		if shed != nil {
			shed.Add(1)
			total.shed.Add(1)
		}
		if to != nil {
			to.Add(1)
			total.timeout.Add(1)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	if *progress > 0 {
		ticker := time.NewTicker(*progress)
		defer ticker.Stop()
		go func() {
			var last int64
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
					cur := total.sent.Load()
					fmt.Fprintf(stderr, "loadgen: %d sent (+%.0f/s) shed=%d\n",
						cur, float64(cur-last)/progress.Seconds(), total.shed.Load())
					last = cur
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *rate > 0 {
		// Open loop: dispatch on a fixed schedule regardless of
		// completions, bounded by -max-inflight.
		sem := make(chan struct{}, *maxInflight)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		rng := rand.New(rand.NewSource(*seed))
	dispatch:
		for {
			select {
			case <-runCtx.Done():
				break dispatch
			case <-ticker.C:
				class, baseIdx, tgtIdx := pickClass(mix, rng), rng.Intn(len(bases)), rng.Intn(len(targets))
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						fire(class, baseIdx, tgtIdx)
					}()
				default:
					dropped.Add(1)
				}
			}
		}
	} else {
		// Closed loop: each worker issues its next request as soon as
		// the previous one answers.
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + 1000*int64(w)))
				for runCtx.Err() == nil {
					fire(pickClass(mix, rng), rng.Intn(len(bases)), rng.Intn(len(targets)))
				}
			}(w)
		}
		<-runCtx.Done()
	}
	wg.Wait()
	elapsed := time.Since(start)
	interrupted := ctx.Err() != nil

	// Build the report.
	rep := report{
		DurationS: elapsed.Seconds(),
		Requests:  total.sent.Load(),
		OK:        total.ok.Load(),
		Shed:      total.shed.Load(),
		Timeouts:  total.timeout.Load(),
		Errors:    total.errored.Load(),
		Transport: total.transport.Load(),
		Dropped:   dropped.Load(),
		Classes:   map[string]classReport{},
		Partial:   interrupted,
	}
	if len(targets) > 1 {
		rep.Targets = len(targets)
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.RateRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	for i, cs := range stats {
		if cs.sent.Load() == 0 {
			continue
		}
		rep.Classes[classNames[i]] = classReport{
			Requests:  cs.sent.Load(),
			OK:        cs.ok.Load(),
			Shed:      cs.shed.Load(),
			Timeouts:  cs.timeout.Load(),
			Errors:    cs.errored.Load(),
			quantiles: quantilesOf(cs.lat.Snapshot()),
		}
	}

	if *check {
		final, err := scrapeAll(client, targets)
		if err != nil {
			return 1, fmt.Errorf("final scrape: %w", err)
		}
		rep.Server = crossCheck(baseline, final, &total, stats)
		rep.Stages = map[string]quantiles{}
		for name, cur := range final.Histograms {
			stage, ok := strings.CutPrefix(name, "server.stage_")
			if !ok {
				continue
			}
			d := cur.Sub(baseline.Histograms[name])
			if d.Count > 0 {
				rep.Stages[strings.TrimSuffix(stage, "_us")] = quantilesOf(d)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else {
		writeTextReport(stdout, rep)
	}
	if interrupted {
		return 130, nil
	}
	if rep.Server != nil && !rep.Server.OK && !rep.Server.Skipped {
		return 1, fmt.Errorf("server cross-check failed: server saw %d requests, client expected %d (shed %d vs %d)",
			rep.Server.ServerRequests, rep.Server.ClientExpected, rep.Server.ServerShed, rep.Server.ClientShed)
	}
	return 0, nil
}

// crossCheck compares the server's counter deltas against the
// client's own accounting. Every well-formed analyze/dup request and
// every delta that resolved a base increments server.requests exactly
// once; transport errors make the mapping ambiguous (the server may or
// may not have counted the aborted request), so the check is skipped
// rather than reported as a mismatch.
func crossCheck(baseline, final metricsDoc, total *classStats, stats []*classStats) *serverCheck {
	sc := &serverCheck{
		ServerRequests: final.Counters["server.requests"] - baseline.Counters["server.requests"],
		ServerShed:     final.Counters["server.shed"] - baseline.Counters["server.shed"],
		ClientShed:     total.shed.Load(),
	}
	// 404 delta base-misses never reach the analyze path, and 400s die
	// at decode; both are in errored. Treat all errored responses as
	// not-counted — exact for 400/404, which are the only error
	// statuses the harness's well-formed traffic can draw, besides 500
	// (counted, but a 500 also fails the run loudly in the report).
	sc.ClientExpected = total.sent.Load() - total.transport.Load() - total.errored.Load()
	if total.transport.Load() > 0 {
		sc.Skipped = true
		sc.Reason = "transport errors make server-side accounting ambiguous"
		return sc
	}
	// Fleet runs: a degraded proxy means the edge computed locally after
	// the owner answered badly or not at all, and whether the owner also
	// counted the request depends on how far it got — skip rather than
	// guess.
	if deg := (final.Counters["server.peer_degraded"] - baseline.Counters["server.peer_degraded"]) +
		(final.Counters["server.peer_errors"] - baseline.Counters["server.peer_errors"]); deg > 0 {
		sc.Skipped = true
		sc.Reason = fmt.Sprintf("fleet degraded mid-run (%d peer failures) — owner-side accounting ambiguous", deg)
		return sc
	}
	sc.OK = sc.ServerRequests == sc.ClientExpected && sc.ServerShed == sc.ClientShed
	return sc
}

func writeTextReport(w io.Writer, rep report) {
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs (%.1f req/s), %d ok, %d shed (%.1f%%), %d timeouts, %d errors, %d transport\n",
		rep.Requests, rep.DurationS, rep.RateRPS, rep.OK, rep.Shed, 100*rep.ShedRate, rep.Timeouts, rep.Errors, rep.Transport)
	if rep.Targets > 1 {
		fmt.Fprintf(w, "loadgen: load spread over %d fleet nodes (server metrics below are fleet sums)\n", rep.Targets)
	}
	if rep.Dropped > 0 {
		fmt.Fprintf(w, "loadgen: %d dispatches dropped client-side (max-inflight)\n", rep.Dropped)
	}
	names := make([]string, 0, len(rep.Classes))
	for n := range rep.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := rep.Classes[n]
		fmt.Fprintf(w, "  %-6s n=%-6d p50=%.0fµs p95=%.0fµs p99=%.0fµs max=%dµs\n",
			n, c.Requests, c.P50US, c.P95US, c.P99US, c.MaxUS)
	}
	if len(rep.Stages) > 0 {
		fmt.Fprintln(w, "server stages (interval):")
		stages := make([]string, 0, len(rep.Stages))
		for n := range rep.Stages {
			stages = append(stages, n)
		}
		sort.Strings(stages)
		for _, n := range stages {
			q := rep.Stages[n]
			fmt.Fprintf(w, "  %-9s n=%-6d p50=%.0fµs p95=%.0fµs p99=%.0fµs\n", n, q.Count, q.P50US, q.P95US, q.P99US)
		}
	}
	if rep.Server != nil {
		switch {
		case rep.Server.Skipped:
			fmt.Fprintf(w, "server check: skipped (%s)\n", rep.Server.Reason)
		case rep.Server.OK:
			fmt.Fprintf(w, "server check: ok (server saw %d requests, shed %d — matches)\n",
				rep.Server.ServerRequests, rep.Server.ServerShed)
		default:
			fmt.Fprintf(w, "server check: MISMATCH (server %d requests vs client %d; shed %d vs %d)\n",
				rep.Server.ServerRequests, rep.Server.ClientExpected, rep.Server.ServerShed, rep.Server.ClientShed)
		}
	}
	if rep.Partial {
		fmt.Fprintln(w, "loadgen: interrupted — report covers a partial run")
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
