// Command simulate generates a random workload, runs the
// cycle-accurate multicore simulator and the analytical WCRT analysis
// side by side, and prints observed maxima against the analytical
// bounds — the repository's executable soundness demonstration
// ("our simulator is available on demand").
//
// Usage:
//
//	simulate -seed 3 -cores 2 -tasks-per-core 3 -util 0.3 -policy rr -jobs 3
//
// Ctrl-C interrupts between the simulation and analysis steps; the
// observed results gathered so far are still printed and the process
// exits with code 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// smallBenchmarks keeps simulated traces manageable; the bigger suite
// members (nsichneu, statemate, bsort100...) produce million-cycle
// jobs that only make sense with -jobs 1.
var smallBenchmarks = []string{"lcdnum", "cnt", "qurt", "crc", "jfdctint", "ns", "edn"}

// run executes the whole command against explicit streams and returns
// the process exit code (0 ok, 2 soundness violation, 130
// interrupted), so tests can drive it end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "RNG seed")
	cores := fs.Int("cores", 2, "number of cores")
	perCore := fs.Int("tasks-per-core", 3, "tasks per core")
	util := fs.Float64("util", 0.3, "per-core utilization target")
	policyS := fs.String("policy", "rr", "bus policy: fp, rr, tdma, regulated or paraware")
	jobs := fs.Int("jobs", 3, "simulate about this many jobs of the longest-period task")
	sets := fs.Int("sets", 64, "cache sets per core")
	dmem := fs.Int64("dmem", 5, "memory access time (cycles)")
	regQ := fs.Int64("reg-budget", 5, "regulated bus: per-core budget Q (accesses per period)")
	regP := fs.Int64("reg-period", 100, "regulated bus: replenishment period P (cycles)")
	allBench := fs.Bool("all-benchmarks", false, "draw from the full suite (large traces; slow)")
	trace := fs.Bool("trace", false, "print every simulator event (releases, misses, bus grants, preemptions)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *jobs < 1 {
		return 1, fmt.Errorf("-jobs must be at least 1 (got %d)", *jobs)
	}

	var policy sim.Policy
	var arbiter core.Arbiter
	switch strings.ToLower(*policyS) {
	case "fp":
		policy, arbiter = sim.PolicyFP, core.FP
	case "rr":
		policy, arbiter = sim.PolicyRR, core.RR
	case "tdma":
		policy, arbiter = sim.PolicyTDMA, core.TDMA
	case "regulated":
		policy, arbiter = sim.PolicyRegulated, core.Regulated
	case "paraware":
		policy, arbiter = sim.PolicyParAware, core.ParAware
	default:
		return 1, fmt.Errorf("unknown policy %q (want fp, rr, tdma, regulated or paraware)", *policyS)
	}

	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores:  *cores,
			Cache:     taskmodel.CacheConfig{NumSets: *sets, BlockSizeBytes: 32},
			DMem:      taskmodel.Time(*dmem),
			SlotSize:  2,
			RegBudget: *regQ,
			RegPeriod: taskmodel.Time(*regP),
		},
		TasksPerCore:    *perCore,
		CoreUtilization: *util,
	}

	names := smallBenchmarks
	if *allBench {
		names = nil
		for _, b := range benchsuite.Suite() {
			names = append(names, b.Name)
		}
	}
	var pool []taskgen.TaskParams
	progs := map[string]*benchProg{}
	for _, name := range names {
		b, err := benchsuite.ByName(name)
		if err != nil {
			return 1, err
		}
		p, err := benchsuite.Extract(b, cfg.Platform.Cache)
		if err != nil {
			return 1, err
		}
		r := p.Result
		pool = append(pool, taskgen.TaskParams{
			Name: name, PD: r.PD, MD: r.MD, MDr: r.MDr,
			UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
		})
		progs[name] = &benchProg{bench: b}
	}

	// The simulator and analyzer are not context-aware mid-run; honour
	// Ctrl-C between the steps instead.
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	if canceled() {
		return 130, nil
	}

	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return 1, err
	}

	var bindings []sim.TaskBinding
	for _, task := range ts.Tasks {
		bindings = append(bindings, sim.TaskBinding{Task: task, Prog: progs[task.Name].bench.Prog})
	}
	horizon := sim.HorizonForJobs(bindings, *jobs)

	fmt.Fprintf(stdout, "simulating %d tasks on %d cores, %s bus, horizon %d cycles\n\n",
		len(bindings), *cores, policy, horizon)

	// Once announced, the simulation always runs to completion (it is
	// not interruptible mid-cycle) so an interrupt can still report the
	// observed behaviour below.
	simCfg := sim.Config{Policy: policy, Horizon: horizon}
	if *trace {
		simCfg.Trace = &sim.WriterTracer{W: stdout}
	}
	simRes, err := sim.Run(cfg.Platform, bindings, simCfg)
	if err != nil {
		return 1, err
	}

	// An interrupt after the simulation still prints the observed
	// behaviour; the analytical columns degrade to "n/a".
	var base, aware *core.Result
	interrupted := canceled()
	if !interrupted {
		if base, err = core.Analyze(ts, core.Config{Arbiter: arbiter, Persistence: false}); err != nil {
			return 1, err
		}
		interrupted = canceled()
	}
	if !interrupted {
		if aware, err = core.Analyze(ts, core.Config{Arbiter: arbiter, Persistence: true}); err != nil {
			return 1, err
		}
	}

	boundOf := func(res *core.Result, prio int) string {
		if res == nil {
			return "n/a" // interrupted before this analysis ran
		}
		for _, tr := range res.Tasks {
			if tr.Priority == prio {
				switch {
				case !tr.Verified:
					return "n/a" // aborted before judging this task
				case !tr.Schedulable:
					return "miss"
				default:
					return fmt.Sprint(tr.WCRT)
				}
			}
		}
		return "?"
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tcore\tprio\tjobs\tobserved max R\tWCRT (base)\tWCRT (CP)\tmax misses/job\tdeadline misses")
	violated := false
	for _, task := range ts.Tasks {
		st := simRes.Tasks[task.Priority]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%d\t%d\n",
			st.Name, st.Core, st.Priority, st.Completed, st.MaxResponse,
			boundOf(base, task.Priority), boundOf(aware, task.Priority),
			st.MaxMissesPerJob, st.DeadlineMisses)
		for _, res := range []*core.Result{base, aware} {
			if res == nil || !res.Complete {
				continue // bounds are missing or mid-iteration estimates, not claims
			}
			for _, tr := range res.Tasks {
				if tr.Priority == task.Priority && tr.Schedulable && st.MaxResponse > tr.WCRT {
					violated = true
				}
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return 1, err
	}

	fmt.Fprintf(stdout, "\nbus: %d accesses served, busy %d of %d cycles (%.1f%%)\n",
		simRes.BusServe, simRes.BusBusy, simRes.Cycles,
		100*float64(simRes.BusBusy)/float64(simRes.Cycles))
	if violated {
		fmt.Fprintln(stdout, "SOUNDNESS VIOLATION: an observed response exceeded a claimed WCRT bound")
		return 2, nil
	}
	if interrupted {
		fmt.Fprintln(stdout, "INTERRUPTED: observed results above; analytical bounds were not (fully) computed")
		return 130, nil
	}
	fmt.Fprintf(stdout, "analysis verdicts: baseline schedulable=%v, persistence-aware schedulable=%v\n",
		base.Schedulable, aware.Schedulable)
	fmt.Fprintln(stdout, "soundness: all observed response times within claimed WCRT bounds")
	return 0, nil
}

type benchProg struct{ bench benchsuite.Benchmark }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
