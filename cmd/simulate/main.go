// Command simulate generates a random workload, runs the
// cycle-accurate multicore simulator and the analytical WCRT analysis
// side by side, and prints observed maxima against the analytical
// bounds — the repository's executable soundness demonstration
// ("our simulator is available on demand").
//
// Usage:
//
//	simulate -seed 3 -cores 2 -tasks-per-core 3 -util 0.3 -policy rr -jobs 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// smallBenchmarks keeps simulated traces manageable; the bigger suite
// members (nsichneu, statemate, bsort100...) produce million-cycle
// jobs that only make sense with -jobs 1.
var smallBenchmarks = []string{"lcdnum", "cnt", "qurt", "crc", "jfdctint", "ns", "edn"}

func run() error {
	seed := flag.Int64("seed", 1, "RNG seed")
	cores := flag.Int("cores", 2, "number of cores")
	perCore := flag.Int("tasks-per-core", 3, "tasks per core")
	util := flag.Float64("util", 0.3, "per-core utilization target")
	policyS := flag.String("policy", "rr", "bus policy: fp, rr or tdma")
	jobs := flag.Int("jobs", 3, "simulate about this many jobs of the longest-period task")
	sets := flag.Int("sets", 64, "cache sets per core")
	dmem := flag.Int64("dmem", 5, "memory access time (cycles)")
	allBench := flag.Bool("all-benchmarks", false, "draw from the full suite (large traces; slow)")
	trace := flag.Bool("trace", false, "print every simulator event (releases, misses, bus grants, preemptions)")
	flag.Parse()

	var policy sim.Policy
	var arbiter core.Arbiter
	switch strings.ToLower(*policyS) {
	case "fp":
		policy, arbiter = sim.PolicyFP, core.FP
	case "rr":
		policy, arbiter = sim.PolicyRR, core.RR
	case "tdma":
		policy, arbiter = sim.PolicyTDMA, core.TDMA
	default:
		return fmt.Errorf("unknown policy %q", *policyS)
	}

	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores: *cores,
			Cache:    taskmodel.CacheConfig{NumSets: *sets, BlockSizeBytes: 32},
			DMem:     taskmodel.Time(*dmem),
			SlotSize: 2,
		},
		TasksPerCore:    *perCore,
		CoreUtilization: *util,
	}

	names := smallBenchmarks
	if *allBench {
		names = nil
		for _, b := range benchsuite.Suite() {
			names = append(names, b.Name)
		}
	}
	var pool []taskgen.TaskParams
	progs := map[string]*benchProg{}
	for _, name := range names {
		b, err := benchsuite.ByName(name)
		if err != nil {
			return err
		}
		p, err := benchsuite.Extract(b, cfg.Platform.Cache)
		if err != nil {
			return err
		}
		r := p.Result
		pool = append(pool, taskgen.TaskParams{
			Name: name, PD: r.PD, MD: r.MD, MDr: r.MDr,
			UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
		})
		progs[name] = &benchProg{bench: b}
	}

	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	var bindings []sim.TaskBinding
	for _, task := range ts.Tasks {
		bindings = append(bindings, sim.TaskBinding{Task: task, Prog: progs[task.Name].bench.Prog})
	}
	horizon := sim.HorizonForJobs(bindings, *jobs)

	fmt.Printf("simulating %d tasks on %d cores, %s bus, horizon %d cycles\n\n",
		len(bindings), *cores, policy, horizon)

	simCfg := sim.Config{Policy: policy, Horizon: horizon}
	if *trace {
		simCfg.Trace = &sim.WriterTracer{W: os.Stdout}
	}
	simRes, err := sim.Run(cfg.Platform, bindings, simCfg)
	if err != nil {
		return err
	}

	base, err := core.Analyze(ts, core.Config{Arbiter: arbiter, Persistence: false})
	if err != nil {
		return err
	}
	aware, err := core.Analyze(ts, core.Config{Arbiter: arbiter, Persistence: true})
	if err != nil {
		return err
	}

	boundOf := func(res *core.Result, prio int) string {
		for _, tr := range res.Tasks {
			if tr.Priority == prio {
				switch {
				case !tr.Verified:
					return "n/a" // aborted before judging this task
				case !tr.Schedulable:
					return "miss"
				default:
					return fmt.Sprint(tr.WCRT)
				}
			}
		}
		return "?"
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tcore\tprio\tjobs\tobserved max R\tWCRT (base)\tWCRT (CP)\tmax misses/job\tdeadline misses")
	violated := false
	for _, task := range ts.Tasks {
		st := simRes.Tasks[task.Priority]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%d\t%d\n",
			st.Name, st.Core, st.Priority, st.Completed, st.MaxResponse,
			boundOf(base, task.Priority), boundOf(aware, task.Priority),
			st.MaxMissesPerJob, st.DeadlineMisses)
		for _, res := range []*core.Result{base, aware} {
			if !res.Complete {
				continue // bounds are mid-iteration estimates, not claims
			}
			for _, tr := range res.Tasks {
				if tr.Priority == task.Priority && tr.Schedulable && st.MaxResponse > tr.WCRT {
					violated = true
				}
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Printf("\nbus: %d accesses served, busy %d of %d cycles (%.1f%%)\n",
		simRes.BusServe, simRes.BusBusy, simRes.Cycles,
		100*float64(simRes.BusBusy)/float64(simRes.Cycles))
	fmt.Printf("analysis verdicts: baseline schedulable=%v, persistence-aware schedulable=%v\n",
		base.Schedulable, aware.Schedulable)
	if violated {
		fmt.Println("SOUNDNESS VIOLATION: an observed response exceeded a claimed WCRT bound")
		os.Exit(2)
	}
	fmt.Println("soundness: all observed response times within claimed WCRT bounds")
	return nil
}

type benchProg struct{ bench benchsuite.Benchmark }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}
