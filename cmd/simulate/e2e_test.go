package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
)

// TestMain lets the test binary double as the command: with the helper
// env set it runs main() verbatim, so e2e tests can exercise the real
// signal path (SIGINT → partial output → exit 130) against a real
// process.
func TestMain(m *testing.M) {
	if os.Getenv("SIMULATE_E2E_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestRunSoundnessDemo(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-seed", "3", "-jobs", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"observed max R", "soundness: all observed response times"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-policy", "bogus"},
		{"-jobs", "0"},
	} {
		var out, errOut bytes.Buffer
		if code, err := run(context.Background(), args, &out, &errOut); err == nil || code != 1 {
			t.Errorf("%v: code=%d err=%v, want a failure", args, code, err)
		}
	}
}

func TestRunPreCanceledExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code, err := run(ctx, []string{"-seed", "3", "-jobs", "2"}, &out, &errOut)
	if err != nil || code != 130 {
		t.Fatalf("run: code=%d err=%v, want 130 with no error", code, err)
	}
}

// TestSIGINTPrintsPartialResultsAndExits130 pins the interrupt
// contract against a real process: Ctrl-C during the simulation must
// still print the observed-behaviour table (analytical columns
// degrade to n/a) and exit with code 130.
func TestSIGINTPrintsPartialResultsAndExits130(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// -jobs 1000 stretches the (uninterruptible) simulation step to a
	// couple of seconds, so the signal reliably lands inside it.
	cmd := exec.Command(exe, "-seed", "3", "-jobs", "1000")
	cmd.Env = append(os.Environ(), "SIMULATE_E2E_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	started := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "simulating") {
			started = true
			break
		}
	}
	if !started {
		t.Fatalf("command never announced the simulation (scan err: %v)", sc.Err())
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(stdout)
	waitErr := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(waitErr, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGINT: %v, want code 130\n%s", waitErr, rest)
	}
	for _, want := range []string{"observed max R", "INTERRUPTED"} {
		if !strings.Contains(string(rest), want) {
			t.Errorf("partial output missing %q:\n%s", want, rest)
		}
	}
}
