package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
)

// TestMain lets the test binary double as the command: with the helper
// env set it runs main() verbatim, so e2e tests can exercise the real
// signal path (SIGINT → partial summary → exit 130) against a real
// process.
func TestMain(m *testing.M) {
	if os.Getenv("VALIDATE_E2E_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestRunSmallCampaign(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-seeds", "1", "-jobs", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"1 workloads", "all analytical bounds dominate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-jobs", "0"},
	} {
		var out, errOut bytes.Buffer
		if code, err := run(context.Background(), args, &out, &errOut); err == nil || code != 1 {
			t.Errorf("%v: code=%d err=%v, want a failure", args, code, err)
		}
	}
}

func TestRunPreCanceledExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code, err := run(ctx, []string{"-seeds", "5"}, &out, &errOut)
	if err != nil || code != 130 {
		t.Fatalf("run: code=%d err=%v, want 130 with no error", code, err)
	}
	for _, want := range []string{"INTERRUPTED after 0 of 5 workloads", "0 workloads"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSIGINTPartialSummaryExits130 pins the interrupt contract against
// a real process: Ctrl-C mid-campaign must stop at the next workload
// boundary, print the summary for the workloads already checked, and
// exit with code 130.
func TestSIGINTPartialSummaryExits130(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Far more workloads than will ever complete: the campaign line is
	// printed before the loop, so the signal lands mid-campaign.
	cmd := exec.Command(exe, "-seeds", "100000")
	cmd.Env = append(os.Environ(), "VALIDATE_E2E_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	started := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "campaign of") {
			started = true
			break
		}
	}
	if !started {
		t.Fatalf("command never announced the campaign (scan err: %v)", sc.Err())
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(stdout)
	waitErr := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(waitErr, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGINT: %v, want code 130\n%s", waitErr, rest)
	}
	if !strings.Contains(string(rest), "INTERRUPTED after") {
		t.Errorf("partial summary missing from output:\n%s", rest)
	}
	if !bytes.Contains(rest, []byte("violations")) {
		t.Errorf("summary line missing from output:\n%s", rest)
	}
}
