// Command validate runs a soundness campaign: many random workloads,
// each simulated cycle-accurately under every bus policy (with
// synchronous, offset and sporadic releases) and checked against the
// analytical WCRT bounds of the baseline and persistence-aware
// analyses. Any observed response time above a claimed bound, or any
// deadline miss in a set declared schedulable, is a soundness
// violation and fails the run.
//
// Usage:
//
//	validate -seeds 20 -util 0.25 -jobs 3
//
// Ctrl-C interrupts between workloads; the summary covers the
// workloads completed so far and the process exits with code 130 (or
// 2 if a violation had already been found).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/persistence"
	"repro/internal/sim"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

var smallBenchmarks = []string{"lcdnum", "cnt", "qurt", "crc", "jfdctint", "ns", "edn"}

// run executes the whole campaign against explicit streams and
// returns the process exit code (0 ok, 2 violations found, 130
// interrupted), so tests can drive it end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 10, "number of random workloads")
	util := fs.Float64("util", 0.25, "per-core utilization target")
	cores := fs.Int("cores", 2, "cores")
	perCore := fs.Int("tasks-per-core", 3, "tasks per core")
	jobs := fs.Int("jobs", 3, "horizon in jobs of the longest-period task")
	jitter := fs.Float64("jitter", 0.5, "sporadic arrival jitter fraction (0 disables the sporadic pass)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *jobs < 1 {
		return 1, fmt.Errorf("-jobs must be at least 1 (got %d)", *jobs)
	}

	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores: *cores,
			Cache:    taskmodel.CacheConfig{NumSets: 64, BlockSizeBytes: 32},
			DMem:     5,
			SlotSize: 2,
			// A small budget over a mid-length period keeps the regulated
			// policy's budget-exhaustion path hot: cores regularly drain
			// their quota mid-window and fall back to reclaim service.
			RegBudget: 4,
			RegPeriod: 150,
		},
		TasksPerCore:    *perCore,
		CoreUtilization: *util,
	}
	var pool []taskgen.TaskParams
	progs := map[string]*benchsuite.Benchmark{}
	for _, name := range smallBenchmarks {
		b, err := benchsuite.ByName(name)
		if err != nil {
			return 1, err
		}
		p, err := benchsuite.Extract(b, cfg.Platform.Cache)
		if err != nil {
			return 1, err
		}
		r := p.Result
		pool = append(pool, taskgen.TaskParams{
			Name: name, PD: r.PD, MD: r.MD, MDr: r.MDr,
			UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
		})
		bb := b
		progs[name] = &bb
	}

	policies := []struct {
		arb core.Arbiter
		pol sim.Policy
	}{
		{core.FP, sim.PolicyFP}, {core.RR, sim.PolicyRR}, {core.TDMA, sim.PolicyTDMA},
		{core.Regulated, sim.PolicyRegulated}, {core.ParAware, sim.PolicyParAware},
	}
	analyses := []core.Config{
		{Arbiter: core.FP}, {Arbiter: core.FP, Persistence: true},
		{Arbiter: core.RR}, {Arbiter: core.RR, Persistence: true},
		{Arbiter: core.RR, Persistence: true, CPRO: persistence.MultisetUnion},
		{Arbiter: core.TDMA}, {Arbiter: core.TDMA, Persistence: true},
		{Arbiter: core.Regulated}, {Arbiter: core.Regulated, Persistence: true},
		{Arbiter: core.ParAware}, {Arbiter: core.ParAware, Persistence: true},
	}

	fmt.Fprintf(stdout, "validate: campaign of %d workloads (%d cores, %d tasks/core, util %.2f)\n",
		*seeds, *cores, *perCore, *util)

	// Each workload is simulated under every policy and release mode;
	// honour Ctrl-C between workloads and still print the summary for
	// the ones already checked.
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	checks, violations, claimed, completed := 0, 0, 0, 0
	for seed := int64(0); seed < int64(*seeds); seed++ {
		if canceled() {
			break
		}
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			return 1, err
		}
		var bindings []sim.TaskBinding
		for _, task := range ts.Tasks {
			bindings = append(bindings, sim.TaskBinding{Task: task, Prog: progs[task.Name].Prog})
		}
		horizon := sim.HorizonForJobs(bindings, *jobs)

		for _, p := range policies {
			modes := []sim.Config{{Policy: p.pol, Horizon: horizon}}
			if *jitter > 0 {
				modes = append(modes, sim.Config{
					Policy: p.pol, Horizon: horizon, ArrivalJitter: *jitter, Seed: seed,
				})
			}
			offsets := map[int]taskmodel.Time{}
			for i, task := range ts.Tasks {
				offsets[task.Priority] = taskmodel.Time((seed*131 + int64(i)*89) % 400)
			}
			modes = append(modes, sim.Config{Policy: p.pol, Horizon: horizon, Offsets: offsets})

			for _, mode := range modes {
				simRes, err := sim.Run(ts.Platform, bindings, mode)
				if err != nil {
					return 1, err
				}
				for _, ana := range analyses {
					if ana.Arbiter != p.arb {
						continue
					}
					res, err := core.Analyze(ts, ana)
					if err != nil {
						return 1, err
					}
					if !res.Schedulable {
						continue
					}
					claimed++
					for _, tr := range res.Tasks {
						st := simRes.Tasks[tr.Priority]
						checks++
						if st.MaxResponse > tr.WCRT || st.DeadlineMisses > 0 {
							violations++
							fmt.Fprintf(stdout, "VIOLATION seed=%d %v persistence=%v task=%s observed=%d bound=%d misses=%d\n",
								seed, ana.Arbiter, ana.Persistence, st.Name, st.MaxResponse, tr.WCRT, st.DeadlineMisses)
						}
					}
				}
			}
		}
		completed++
	}

	interrupted := canceled() && completed < *seeds
	if interrupted {
		fmt.Fprintf(stdout, "INTERRUPTED after %d of %d workloads\n", completed, *seeds)
	}
	fmt.Fprintf(stdout, "validate: %d workloads, %d schedulable claims, %d per-task checks, %d violations\n",
		completed, claimed, checks, violations)
	if violations > 0 {
		return 2, nil
	}
	if interrupted {
		return 130, nil
	}
	fmt.Fprintln(stdout, "all analytical bounds dominate the simulated behaviour")
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
