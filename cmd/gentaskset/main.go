// Command gentaskset generates a random task set the way the paper's
// evaluation does — benchmark parameters from the synthetic suite,
// UUnifast utilizations, deadline-monotonic priorities — and writes it
// as JSON for cmd/buscon.
//
// Usage:
//
//	gentaskset -cores 4 -tasks-per-core 8 -util 0.5 -seed 1 -o set.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

func run() error {
	cores := flag.Int("cores", 4, "number of cores")
	perCore := flag.Int("tasks-per-core", 8, "tasks per core")
	util := flag.Float64("util", 0.5, "per-core utilization target")
	seed := flag.Int64("seed", 1, "RNG seed")
	dmem := flag.Int64("dmem", 5, "memory access time d_mem (cycles)")
	sets := flag.Int("sets", 256, "cache sets per core")
	blockSize := flag.Int("block", 32, "cache block size (bytes)")
	slot := flag.Int("slot", 2, "RR/TDMA slots per core")
	regQ := flag.Int64("reg-budget", 5, "regulated-bus budget Q (accesses per period)")
	regP := flag.Int64("reg-period", 100, "regulated-bus replenishment period P (cycles)")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores:  *cores,
			Cache:     taskmodel.CacheConfig{NumSets: *sets, BlockSizeBytes: *blockSize},
			DMem:      taskmodel.Time(*dmem),
			SlotSize:  *slot,
			RegBudget: *regQ,
			RegPeriod: taskmodel.Time(*regP),
		},
		TasksPerCore:    *perCore,
		CoreUtilization: *util,
	}
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		return err
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ts.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gentaskset: %d tasks on %d cores, per-core utilization %.2f (bus utilization %.3f)\n",
		len(ts.Tasks), *cores, *util, ts.BusUtilization())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gentaskset:", err)
		os.Exit(1)
	}
}
