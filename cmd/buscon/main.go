// Command buscon analyses a task set file and reports per-task WCRT
// bounds and schedulability under the chosen bus arbiter, with or
// without cache persistence awareness.
//
// Usage:
//
//	buscon -in taskset.json -arbiter rr -persistence
//
// Task set files are produced by cmd/gentaskset or by hand (see
// internal/taskmodel's JSON format). Telemetry flags: -metrics prints
// analyzer counters, -trace FILE writes a Chrome trace-event JSON
// viewable at ui.perfetto.dev, -convergence prints per-task iterate
// chains, -v enables debug logging.
//
// Ctrl-C interrupts the analysis between steps; the process exits
// with code 130 (profiles and traces are still flushed).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

func parseArbiter(s string) (core.Arbiter, error) {
	switch strings.ToLower(s) {
	case "fp":
		return core.FP, nil
	case "rr":
		return core.RR, nil
	case "tdma":
		return core.TDMA, nil
	case "perfect":
		return core.Perfect, nil
	case "regulated":
		return core.Regulated, nil
	case "paraware":
		return core.ParAware, nil
	default:
		return 0, fmt.Errorf("unknown arbiter %q (want fp, rr, tdma, perfect, regulated or paraware)", s)
	}
}

func parseCRPD(s string) (crpd.Approach, error) {
	switch strings.ToLower(s) {
	case "ecb-union":
		return crpd.ECBUnion, nil
	case "ucb-only":
		return crpd.UCBOnly, nil
	case "ecb-only":
		return crpd.ECBOnly, nil
	case "ucb-union":
		return crpd.UCBUnion, nil
	case "combined":
		return crpd.Combined, nil
	default:
		return 0, fmt.Errorf("unknown CRPD approach %q", s)
	}
}

func parseCPRO(s string) (persistence.CPROApproach, error) {
	switch strings.ToLower(s) {
	case "union":
		return persistence.Union, nil
	case "multiset":
		return persistence.MultisetUnion, nil
	case "full":
		return persistence.FullReload, nil
	case "none":
		return persistence.None, nil
	default:
		return 0, fmt.Errorf("unknown CPRO approach %q", s)
	}
}

// run executes the whole command against explicit streams and returns
// the process exit code (0 ok, 2 not schedulable, 130 interrupted), so
// tests can drive it end to end. Deferred cleanup — the telemetry
// session flush in particular — runs before the caller exits.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("buscon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	arbS := fs.String("arbiter", "rr", "bus arbiter: fp, rr, tdma, perfect, regulated or paraware")
	persist := fs.Bool("persistence", false, "enable the cache persistence-aware analysis (Lemmas 1-2)")
	crpdS := fs.String("crpd", "ecb-union", "CRPD approach: ecb-union, ucb-only, ecb-only, ucb-union, combined")
	cproS := fs.String("cpro", "union", "CPRO approach: union, multiset, full, none")
	compare := fs.Bool("compare", false, "also run the opposite persistence setting and print both")
	explain := fs.Int("explain", -1, "decompose the WCRT bound of the task with this priority")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
	metrics := fs.Bool("metrics", false, "print analyzer counters and histograms on exit")
	convergence := fs.Bool("convergence", false, "print per-task convergence traces on exit")
	verbose := fs.Bool("v", false, "enable debug logging")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	sess, err := telemetry.StartSession(telemetry.SessionOptions{
		Tool:       "buscon",
		CPUProfile: *cpuprofile, MemProfile: *memprofile,
		TracePath: *tracePath, Metrics: *metrics, Convergence: *convergence,
		Verbose: *verbose, Out: stderr,
	})
	if err != nil {
		return 1, err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(stderr, "buscon:", cerr)
		}
	}()

	if *in == "" {
		fs.Usage()
		return 1, fmt.Errorf("missing -in")
	}
	var f io.ReadCloser
	if *in == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			return 1, err
		}
		defer f.Close()
	}
	ts, err := taskmodel.ReadJSON(f)
	if err != nil {
		return 1, err
	}

	arb, err := parseArbiter(*arbS)
	if err != nil {
		return 1, err
	}
	crpdAp, err := parseCRPD(*crpdS)
	if err != nil {
		return 1, err
	}
	cproAp, err := parseCPRO(*cproS)
	if err != nil {
		return 1, err
	}

	// A single analysis is fast, but -compare and -explain multiply the
	// work; honour Ctrl-C between the steps (telemetry still flushes
	// through the deferred session close).
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	if canceled() {
		return 130, nil
	}

	obs := sess.Observer()
	cfg := core.Config{Arbiter: arb, Persistence: *persist, CRPD: crpdAp, CPRO: cproAp}
	res, err := core.AnalyzeOpts(ts, cfg, core.Options{Observer: obs})
	if err != nil {
		return 1, err
	}

	var other *core.Result
	if *compare {
		if canceled() {
			return 130, nil
		}
		otherCfg := cfg
		otherCfg.Persistence = !cfg.Persistence
		if other, err = core.AnalyzeOpts(ts, otherCfg, core.Options{Observer: obs}); err != nil {
			return 1, err
		}
	}

	fmt.Fprintf(stdout, "platform: %d cores, %d cache sets x %d B, d_mem=%d, slot=%d\n",
		ts.Platform.NumCores, ts.Platform.Cache.NumSets, ts.Platform.Cache.BlockSizeBytes,
		ts.Platform.DMem, ts.Platform.SlotSize)
	fmt.Fprintf(stdout, "analysis: %s bus, persistence=%v, crpd=%s, cpro=%s\n\n", arb, *persist, crpdAp, cproAp)

	if !res.Schedulable {
		fmt.Fprintln(stdout, "note: analysis aborted at the first deadline miss; WCRTs of other tasks are mid-iteration estimates")
		fmt.Fprintln(stdout)
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	if other != nil {
		fmt.Fprintln(tw, "task\tcore\tprio\tT=D\tWCRT\tWCRT(other)\tverdict")
	} else {
		fmt.Fprintln(tw, "task\tcore\tprio\tT=D\tWCRT\tverdict")
	}
	cell := func(tr core.TaskResult) (wcrt, verdict string) {
		switch {
		case !tr.Verified:
			// The abort left only a mid-iteration lower bound.
			return ">=" + fmt.Sprint(tr.WCRT), "unverified"
		case !tr.Schedulable:
			return ">" + fmt.Sprint(tr.Deadline), "DEADLINE MISS"
		default:
			return fmt.Sprint(tr.WCRT), "OK"
		}
	}
	for i, tr := range res.Tasks {
		wcrt, verdict := cell(tr)
		if other != nil {
			ow, _ := cell(other.Tasks[i])
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%s\n", tr.Name, tr.Core, tr.Priority, tr.Deadline, wcrt, ow, verdict)
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\n", tr.Name, tr.Core, tr.Priority, tr.Deadline, wcrt, verdict)
		}
	}
	if err := tw.Flush(); err != nil {
		return 1, err
	}

	fmt.Fprintf(stdout, "\nbus utilization: %.3f\n", ts.BusUtilization())
	if res.Schedulable {
		fmt.Fprintln(stdout, "task set: SCHEDULABLE")
	} else {
		fmt.Fprintln(stdout, "task set: NOT SCHEDULABLE")
	}
	if other != nil {
		fmt.Fprintf(stdout, "with persistence=%v: schedulable=%v\n", !cfg.Persistence, other.Schedulable)
	}
	if *explain >= 0 {
		if canceled() {
			return 130, nil
		}
		ex, err := core.Explain(ts, cfg, *explain)
		if err != nil {
			return 1, err
		}
		fmt.Fprintln(stdout)
		if err := ex.Render(stdout); err != nil {
			return 1, err
		}
	}
	if !res.Schedulable {
		return 2, nil
	}
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buscon:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
