package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/persistence"
)

func TestParseArbiter(t *testing.T) {
	cases := map[string]core.Arbiter{
		"fp": core.FP, "FP": core.FP,
		"rr": core.RR, "RR": core.RR,
		"tdma": core.TDMA, "TDMA": core.TDMA,
		"perfect": core.Perfect, "Perfect": core.Perfect,
	}
	for in, want := range cases {
		got, err := parseArbiter(in)
		if err != nil || got != want {
			t.Errorf("parseArbiter(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseArbiter("priority"); err == nil {
		t.Error("parseArbiter(priority) accepted")
	}
}

func TestParseCRPD(t *testing.T) {
	cases := map[string]crpd.Approach{
		"ecb-union": crpd.ECBUnion,
		"ucb-only":  crpd.UCBOnly,
		"ecb-only":  crpd.ECBOnly,
		"ucb-union": crpd.UCBUnion,
		"combined":  crpd.Combined,
	}
	for in, want := range cases {
		got, err := parseCRPD(in)
		if err != nil || got != want {
			t.Errorf("parseCRPD(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseCRPD("magic"); err == nil {
		t.Error("parseCRPD(magic) accepted")
	}
}

func TestParseCPRO(t *testing.T) {
	cases := map[string]persistence.CPROApproach{
		"union":    persistence.Union,
		"multiset": persistence.MultisetUnion,
		"full":     persistence.FullReload,
		"none":     persistence.None,
	}
	for in, want := range cases {
		got, err := parseCPRO(in)
		if err != nil || got != want {
			t.Errorf("parseCPRO(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseCPRO("magic"); err == nil {
		t.Error("parseCPRO(magic) accepted")
	}
}
