package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

// writeFig1 dumps the paper's worked example to a temp file.
func writeFig1(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.Fig1TaskSet().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPaperExample(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-in", writeFig1(t), "-arbiter", "fp", "-persistence"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "SCHEDULABLE") {
		t.Errorf("output missing verdict:\n%s", out.String())
	}
}

// TestRunTraceEmitsValidChromeTrace is the acceptance check of the
// telemetry wiring: buscon -trace on the paper example must produce
// valid Chrome trace-event JSON whose embedded counter snapshot
// reconciles — abort reasons sum to the number of unschedulable runs.
func TestRunTraceEmitsValidChromeTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	// -compare runs both persistence settings: two analyzer runs in the
	// trace, both schedulable on the paper example.
	code, err := run(context.Background(), []string{
		"-in", writeFig1(t), "-arbiter", "fp", "-persistence", "-compare",
		"-trace", trace, "-metrics", "-convergence",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var counters map[string]any
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ph, _ := ev["ph"].(string); ph == "X" {
			if cat, _ := ev["cat"].(string); cat != "" {
				spans[cat]++
			}
		}
		if ev["name"] == "telemetry" {
			args, _ := ev["args"].(map[string]any)
			counters, _ = args["counters"].(map[string]any)
		}
	}
	if counters == nil {
		t.Fatal("trace has no embedded counter snapshot")
	}
	cnt := func(name string) float64 {
		v, _ := counters[name].(float64)
		return v
	}
	if got := cnt("analyzer.runs"); got != 2 {
		t.Errorf("analyzer.runs = %v, want 2 (-compare runs both settings)", got)
	}
	// Both runs schedulable: no aborts, all runs completed.
	aborts := cnt("abort.deadline_miss") + cnt("abort.nonconvergence") + cnt("abort.bus_overload")
	unschedulable := cnt("analyzer.runs") - cnt("analyzer.runs_completed")
	if aborts != unschedulable {
		t.Errorf("abort counters (%v) do not reconcile with unschedulable runs (%v)", aborts, unschedulable)
	}
	if aborts != 0 {
		t.Errorf("aborts = %v on the schedulable paper example", aborts)
	}
	if spans["analyzer"] == 0 || spans["task"] == 0 {
		t.Errorf("trace missing analyzer/task spans: %v", spans)
	}
	for _, want := range []string{"analyzer.runs", "convergence traces", "tau1"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("telemetry output missing %q:\n%s", want, errOut.String())
		}
	}
}

// TestRunTraceReconcilesOnDeadlineMiss drives an unschedulable input
// through -trace and checks the abort accounting.
func TestRunTraceReconcilesOnDeadlineMiss(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// Stress d_mem until the FP analysis must abort.
	ts.Platform.DMem = 50
	path := filepath.Join(t.TempDir(), "stressed.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-in", path, "-arbiter", "fp", "-trace", trace}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for unschedulable", code)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "telemetry" {
			args := ev["args"].(map[string]any)
			counters := args["counters"].(map[string]any)
			miss, _ := counters["abort.deadline_miss"].(float64)
			if miss != 1 {
				t.Errorf("abort.deadline_miss = %v, want 1", miss)
			}
			return
		}
	}
	t.Fatal("no telemetry snapshot in trace")
}

// TestRunInterruptedExits130: a canceled context makes run stop before
// the analysis and report the interrupt as exit code 130, with the
// telemetry session still flushed (no error from the deferred close).
func TestRunInterruptedExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code, err := run(ctx, []string{"-in", writeFig1(t), "-arbiter", "fp"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
}
