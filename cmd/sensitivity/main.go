// Command sensitivity locates the edge of schedulability for a task
// set: the largest tolerable memory access time d_mem, and the
// critical period-scaling factor, under every bus arbiter with and
// without persistence awareness. It quantifies, in model-parameter
// units rather than verdicts, how much margin cache persistence
// awareness buys.
//
// Usage:
//
//	sensitivity -in taskset.json
//	gentaskset -util 0.3 | sensitivity -in -
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/taskmodel"
)

func run() error {
	in := flag.String("in", "", "task set JSON file (required; - for stdin)")
	limit := flag.Int64("dmem-limit", 1<<16, "upper bound for the d_mem search")
	tol := flag.Float64("tol", 1e-3, "relative tolerance of the scaling search")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	ts, err := taskmodel.ReadJSON(f)
	if err != nil {
		return err
	}

	fmt.Printf("platform: %d cores, %d sets, d_mem=%d; %d tasks, bus utilization %.3f\n\n",
		ts.Platform.NumCores, ts.Platform.Cache.NumSets, ts.Platform.DMem,
		len(ts.Tasks), ts.BusUtilization())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "analysis\tschedulable\tmax d_mem\tcritical scaling")
	for _, arb := range []core.Arbiter{core.FP, core.RR, core.TDMA} {
		for _, persistence := range []bool{false, true} {
			cfg := core.Config{Arbiter: arb, Persistence: persistence}
			name := arb.String()
			if persistence {
				name += "-CP"
			}
			res, err := core.Analyze(ts, cfg)
			if err != nil {
				return err
			}
			maxD, err := core.MaxDMem(ts, cfg, taskmodel.Time(*limit))
			if err != nil {
				return err
			}
			scaling := "-"
			if k, err := core.CriticalScaling(ts, cfg, *tol); err == nil {
				scaling = fmt.Sprintf("%.3f", k)
			}
			fmt.Fprintf(tw, "%s\t%v\t%d\t%s\n", name, res.Schedulable, maxD, scaling)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nmax d_mem: largest memory latency the analysis still proves schedulable")
	fmt.Println("critical scaling: smallest factor on all periods/deadlines that is schedulable")
	fmt.Println("(< 1 means headroom; persistence-aware rows should never show less margin)")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}
