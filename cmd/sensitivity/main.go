// Command sensitivity locates the edge of schedulability for a task
// set: the largest tolerable memory access time d_mem, and the
// critical period-scaling factor, under every bus arbiter with and
// without persistence awareness. It quantifies, in model-parameter
// units rather than verdicts, how much margin cache persistence
// awareness buys.
//
// Usage:
//
//	sensitivity -in taskset.json
//	gentaskset -util 0.3 | sensitivity -in -
//
// Telemetry flags: -metrics prints analyzer counters over the whole
// search (the binary searches run many analyses), -trace FILE writes
// a Chrome trace-event JSON viewable at ui.perfetto.dev, -v enables
// debug logging.
//
// Ctrl-C interrupts the search gracefully: the rows computed so far
// are still printed and the process exits with code 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// run executes the command against explicit streams so tests can
// drive it end to end. Exit codes: 0 ok, 1 error, 130 interrupted
// (rows computed before the interrupt are still printed).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sensitivity", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	limit := fs.Int64("dmem-limit", 1<<16, "upper bound for the d_mem search")
	tol := fs.Float64("tol", 1e-3, "relative tolerance of the scaling search")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
	metrics := fs.Bool("metrics", false, "print analyzer counters and histograms on exit")
	verbose := fs.Bool("v", false, "enable debug logging")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *in == "" {
		fs.Usage()
		return 1, fmt.Errorf("missing -in")
	}

	sess, err := telemetry.StartSession(telemetry.SessionOptions{
		Tool:      "sensitivity",
		TracePath: *tracePath, Metrics: *metrics,
		Verbose: *verbose, Out: stderr,
	})
	if err != nil {
		return 1, err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(stderr, "sensitivity:", cerr)
		}
	}()
	copts := core.Options{Observer: sess.Observer()}

	var f io.ReadCloser = os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			return 1, err
		}
		defer f.Close()
	}
	ts, err := taskmodel.ReadJSON(f)
	if err != nil {
		return 1, err
	}

	fmt.Fprintf(stdout, "platform: %d cores, %d sets, d_mem=%d; %d tasks, bus utilization %.3f\n\n",
		ts.Platform.NumCores, ts.Platform.Cache.NumSets, ts.Platform.DMem,
		len(ts.Tasks), ts.BusUtilization())

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "analysis\tschedulable\tmax d_mem\tcritical scaling")
	interrupted := false
	arbs := []core.Arbiter{core.FP, core.RR, core.TDMA}
	// The regulated row needs the regulation parameters; task sets
	// written before they existed decode them as zero, so gate the row
	// rather than fail the whole table.
	if ts.Platform.RegBudget >= 1 && ts.Platform.RegPeriod >= 1 {
		arbs = append(arbs, core.Regulated)
	}
	arbs = append(arbs, core.ParAware)
rows:
	for _, arb := range arbs {
		for _, persistence := range []bool{false, true} {
			// Each row runs three searches (tens to hundreds of analyzer
			// runs); stop between rows when interrupted so the table built
			// so far is still printed.
			if ctx != nil && ctx.Err() != nil {
				interrupted = true
				break rows
			}
			cfg := core.Config{Arbiter: arb, Persistence: persistence}
			name := arb.String()
			if persistence {
				name += "-CP"
			}
			res, err := core.AnalyzeOpts(ts, cfg, copts)
			if err != nil {
				return 1, err
			}
			maxD, err := core.MaxDMemOpts(ts, cfg, taskmodel.Time(*limit), copts)
			if err != nil {
				return 1, err
			}
			scaling := "-"
			if k, err := core.CriticalScalingOpts(ts, cfg, *tol, copts); err == nil {
				scaling = fmt.Sprintf("%.3f", k)
			}
			fmt.Fprintf(tw, "%s\t%v\t%d\t%s\n", name, res.Schedulable, maxD, scaling)
		}
	}
	if err := tw.Flush(); err != nil {
		return 1, err
	}
	if interrupted {
		fmt.Fprintln(stdout, "\ninterrupted: rows above are partial")
		return 130, nil
	}
	fmt.Fprintln(stdout, "\nmax d_mem: largest memory latency the analysis still proves schedulable")
	fmt.Fprintln(stdout, "critical scaling: smallest factor on all periods/deadlines that is schedulable")
	fmt.Fprintln(stdout, "(< 1 means headroom; persistence-aware rows should never show less margin)")
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
