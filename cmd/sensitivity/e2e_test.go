package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func TestRunSensitivityWithTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.Fig1TaskSet().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-in", path, "-trace", trace, "-metrics"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"FP-CP", "RR-CP", "critical scaling"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "analyzer.runs") {
		t.Errorf("-metrics summary missing from stderr:\n%s", errOut.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !json.Valid(data) {
		t.Error("trace is not valid JSON")
	}
}
