package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func writeFig1(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.Fig1TaskSet().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSensitivityWithTelemetry(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-in", writeFig1(t), "-trace", trace, "-metrics"}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	for _, want := range []string{"FP-CP", "RR-CP", "critical scaling"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "analyzer.runs") {
		t.Errorf("-metrics summary missing from stderr:\n%s", errOut.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !json.Valid(data) {
		t.Error("trace is not valid JSON")
	}
}

// TestRunInterruptedExits130: a canceled context stops the search
// between rows, still prints the (possibly empty) table, and reports
// the interrupt as exit code 130.
func TestRunInterruptedExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code, err := run(ctx, []string{"-in", writeFig1(t)}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Errorf("output does not flag the interruption:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "analysis\t") && !strings.Contains(out.String(), "analysis ") {
		t.Errorf("interrupted run lost the table header:\n%s", out.String())
	}
}
