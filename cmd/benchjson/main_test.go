package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Some CPU @ 2.00GHz
BenchmarkAnalyzerFP/base-8         	    5000	    244123 ns/op	   98432 B/op	    1019 allocs/op
BenchmarkAnalyzerFP/persist-8      	    3000	    406000 ns/op	  120000 B/op	    1500 allocs/op
BenchmarkNoMem-8                   	 1000000	      1042 ns/op
PASS
ok  	repro/internal/core	12.3s
--- BENCH: some chatter
Benchmark 12 not-a-line
`
	got, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	b := got[0]
	if b.Name != "BenchmarkAnalyzerFP/base-8" || b.Iterations != 5000 ||
		b.NsPerOp != 244123 || b.BytesPerOp != 98432 || b.AllocsPerOp != 1019 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if got[2].Name != "BenchmarkNoMem-8" || got[2].NsPerOp != 1042 ||
		got[2].BytesPerOp != 0 || got[2].AllocsPerOp != 0 {
		t.Errorf("no-benchmem line parsed wrong: %+v", got[2])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output, want 0", len(got))
	}
}

func TestParseBenchFractionalNs(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		"BenchmarkTiny-4   \t 200000000 \t 6.02 ns/op \t 0 B/op \t 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].NsPerOp != 6.02 {
		t.Fatalf("fractional ns/op parsed wrong: %+v", got)
	}
}
