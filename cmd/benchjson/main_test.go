package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Some CPU @ 2.00GHz
BenchmarkAnalyzerFP/base-8         	    5000	    244123 ns/op	   98432 B/op	    1019 allocs/op
BenchmarkAnalyzerFP/persist-8      	    3000	    406000 ns/op	  120000 B/op	    1500 allocs/op
BenchmarkNoMem-8                   	 1000000	      1042 ns/op
PASS
ok  	repro/internal/core	12.3s
--- BENCH: some chatter
Benchmark 12 not-a-line
`
	got, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	b := got[0]
	if b.Name != "BenchmarkAnalyzerFP/base-8" || b.Iterations != 5000 ||
		b.NsPerOp != 244123 || b.BytesPerOp != 98432 || b.AllocsPerOp != 1019 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if got[2].Name != "BenchmarkNoMem-8" || got[2].NsPerOp != 1042 ||
		got[2].BytesPerOp != 0 || got[2].AllocsPerOp != 0 {
		t.Errorf("no-benchmem line parsed wrong: %+v", got[2])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output, want 0", len(got))
	}
}

func report(benches ...Benchmark) *Report {
	return &Report{Benchmarks: benches}
}

func TestCompareNoRegression(t *testing.T) {
	old := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: 3},
		Benchmark{Name: "BenchmarkB-8", NsPerOp: 200},
	)
	cur := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 105, AllocsPerOp: 3}, // +5%, under threshold
		Benchmark{Name: "BenchmarkB-8", NsPerOp: 150},                 // faster
	)
	var buf bytes.Buffer
	n, err := compare(old, cur, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("regressions = %d, want 0:\n%s", n, buf.String())
	}
}

func TestCompareFlagsSlowdownAndAllocs(t *testing.T) {
	old := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 100},
		Benchmark{Name: "BenchmarkZeroAlloc-8", NsPerOp: 50, AllocsPerOp: 0},
	)
	cur := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 120},                          // +20% > 10%
		Benchmark{Name: "BenchmarkZeroAlloc-8", NsPerOp: 50, AllocsPerOp: 2},   // allocs appeared
		Benchmark{Name: "BenchmarkNew-8", NsPerOp: 999},                        // no baseline: informational
	)
	var buf bytes.Buffer
	n, err := compare(old, cur, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("regressions = %d, want 2:\n%s", n, buf.String())
	}
	for _, want := range []string{"REGRESSION", "ALLOC REGRESSION", "new"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCompareBestOfN(t *testing.T) {
	// -count runs repeat each name; the fastest time wins, but an
	// allocation appearing in any run still counts.
	old := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 100},
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 90},
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 110},
	)
	cur := report(
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 95, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkA-8", NsPerOp: 91, AllocsPerOp: 1},
	)
	var buf bytes.Buffer
	n, err := compare(old, cur, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 90 -> 91 is ~1%, fine; the stray alloc is the one regression.
	if n != 1 {
		t.Errorf("regressions = %d, want 1 (alloc):\n%s", n, buf.String())
	}
	if strings.Count(buf.String(), "BenchmarkA") != 1 {
		t.Errorf("repeated runs not folded:\n%s", buf.String())
	}
}

// TestCompareAcrossGomaxprocs: the -<GOMAXPROCS> name suffix differs
// between recording machines (an 8-way laptop vs a 4-way CI runner)
// and must not make the reports disjoint. Names whose final dash
// segment is not purely numeric are left alone.
func TestCompareAcrossGomaxprocs(t *testing.T) {
	old := report(Benchmark{Name: "BenchmarkA/sets8192-8", NsPerOp: 100})
	cur := report(Benchmark{Name: "BenchmarkA/sets8192-4", NsPerOp: 104})
	var buf bytes.Buffer
	n, err := compare(old, cur, 10, &buf)
	if err != nil {
		t.Fatalf("cross-GOMAXPROCS reports treated as disjoint: %v", err)
	}
	if n != 0 {
		t.Errorf("regressions = %d, want 0:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkA/sets8192 ") ||
		strings.Contains(buf.String(), "sets8192-") {
		t.Errorf("names not normalized in table:\n%s", buf.String())
	}
	for _, name := range []string{"Benchmark-suffix-", "Benchmark-"} {
		if got := stripProcsSuffix(name); got != name {
			t.Errorf("stripProcsSuffix(%q) = %q, want unchanged", name, got)
		}
	}
	if got := stripProcsSuffix("BenchmarkA-16"); got != "BenchmarkA" {
		t.Errorf("stripProcsSuffix(BenchmarkA-16) = %q, want BenchmarkA", got)
	}
}

func TestCompareDisjointReports(t *testing.T) {
	var buf bytes.Buffer
	if _, err := compare(report(Benchmark{Name: "A"}), report(Benchmark{Name: "B"}), 10, &buf); err == nil {
		t.Error("disjoint reports accepted")
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", report(Benchmark{Name: "BenchmarkA-8", NsPerOp: 100}))
	same := write("same.json", report(Benchmark{Name: "BenchmarkA-8", NsPerOp: 101}))
	slow := write("slow.json", report(Benchmark{Name: "BenchmarkA-8", NsPerOp: 200}))

	var out, errOut bytes.Buffer
	if code, err := runCompare([]string{old, same}, &out, &errOut); code != 0 || err != nil {
		t.Errorf("identical-ish reports: code=%d err=%v", code, err)
	}
	if code, err := runCompare([]string{old, slow}, &out, &errOut); code != 2 || err == nil {
		t.Errorf("2x slowdown: code=%d err=%v, want 2 with error", code, err)
	}
	// Tightened threshold turns the 1% drift into a failure.
	if code, _ := runCompare([]string{"-threshold", "0.5", old, same}, &out, &errOut); code != 2 {
		t.Errorf("threshold 0.5%%: code=%d, want 2", code)
	}
	if code, _ := runCompare([]string{old}, &out, &errOut); code != 1 {
		t.Errorf("missing arg: code=%d, want 1", code)
	}
	if code, _ := runCompare([]string{old, filepath.Join(dir, "absent.json")}, &out, &errOut); code != 1 {
		t.Errorf("absent file: code=%d, want 1", code)
	}
}

// TestHelperBench is not a real test: re-executed as a fake `go test`
// process (see fakeBench), it prints one completed benchmark line and
// then fails like a broken package would.
func TestHelperBench(t *testing.T) {
	if os.Getenv("BENCHJSON_HELPER") == "" {
		return
	}
	fmt.Println("BenchmarkSalvaged-8   \t 100 \t 123 ns/op \t 0 B/op \t 0 allocs/op")
	if os.Getenv("BENCHJSON_HELPER") == "fail" {
		fmt.Println("--- FAIL: TestBrokenElsewhere")
		os.Exit(1)
	}
	fmt.Println("PASS")
	os.Exit(0)
}

// fakeBench points benchCommand at the helper above for one test.
func fakeBench(t *testing.T, mode string) {
	t.Helper()
	prev := benchCommand
	benchCommand = func(args []string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperBench$")
		cmd.Env = append(os.Environ(), "BENCHJSON_HELPER="+mode)
		return cmd
	}
	t.Cleanup(func() { benchCommand = prev })
}

// TestRunSalvagesReportOnFailure: when go test exits non-zero after
// producing benchmark lines, the report is still written — and the
// failure still surfaces as a non-zero exit.
func TestRunSalvagesReportOnFailure(t *testing.T) {
	fakeBench(t, "fail")
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	code, err := run([]string{"-out", outPath}, &out, &errOut)
	if code == 0 || err == nil {
		t.Fatalf("failing bench run reported success: code=%d err=%v", code, err)
	}
	rep, rerr := readReport(outPath)
	if rerr != nil {
		t.Fatalf("salvaged report unreadable: %v (stderr: %s)", rerr, errOut.String())
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkSalvaged-8" {
		t.Errorf("salvaged benchmarks = %+v, want the one completed line", rep.Benchmarks)
	}
	if !strings.Contains(errOut.String(), "salvaging") {
		t.Errorf("stderr does not announce the salvage:\n%s", errOut.String())
	}
}

// TestRunHealthyWritesReport: the happy path through the same seam.
func TestRunHealthyWritesReport(t *testing.T) {
	fakeBench(t, "ok")
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	code, err := run([]string{"-out", outPath}, &out, &errOut)
	if code != 0 || err != nil {
		t.Fatalf("run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	rep, err := readReport(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Errorf("report has %d benchmarks, want 1", len(rep.Benchmarks))
	}
}

// TestRunFailureWithoutOutputKeepsError: nothing to salvage — the go
// test error must come through instead of "no benchmark results".
func TestRunFailureWithoutOutputKeepsError(t *testing.T) {
	prev := benchCommand
	benchCommand = func(args []string) *exec.Cmd { return exec.Command("false") }
	t.Cleanup(func() { benchCommand = prev })
	var out, errOut bytes.Buffer
	code, err := run([]string{"-out", filepath.Join(t.TempDir(), "b.json")}, &out, &errOut)
	if code != 1 || err == nil || !strings.Contains(err.Error(), "go test") {
		t.Fatalf("code=%d err=%v, want the go test failure", code, err)
	}
}

func TestParseBenchFractionalNs(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		"BenchmarkTiny-4   \t 200000000 \t 6.02 ns/op \t 0 B/op \t 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].NsPerOp != 6.02 {
		t.Fatalf("fractional ns/op parsed wrong: %+v", got)
	}
}
