// Command benchjson runs the repository benchmarks and records the
// results as machine-readable JSON, one file per invocation, so runs
// can be diffed across commits (the CI smoke-bench uploads the file as
// an artifact).
//
// Usage:
//
//	benchjson                        # bench ./... 1x -> BENCH_<date>.json
//	benchjson -bench Fig -benchtime 2s -out bench.json
//	go test -bench . -benchmem ./... | benchjson -in -
//
// With -in, no benchmarks are run: existing `go test -bench -benchmem`
// output is parsed instead (use - for stdin).
//
// The compare subcommand diffs two recorded reports and fails (exit 2)
// when any benchmark regressed by more than the threshold, so CI can
// gate on it:
//
//	benchjson compare old.json new.json            # fail on >10% ns/op
//	benchjson compare -threshold 5 old.json new.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Command    string      `json:"command,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench extracts benchmark lines from `go test -bench -benchmem`
// output. Lines that are not benchmark results (test chatter, pkg
// headers, PASS/ok) are ignored.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: f[0], Iterations: iters}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// stripProcsSuffix removes the trailing -<GOMAXPROCS> decoration go
// test appends to every benchmark name, so a report recorded on an
// 8-way machine still lines up entry for entry with one from a 4-way
// CI runner. Only a purely numeric final dash segment is stripped;
// sub-benchmark names that merely contain digits are untouched.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// bestOf folds repeated runs of the same benchmark (go test -count N)
// into one entry, keeping the fastest time — the standard best-of-N
// noise reduction — and the worst allocation count, so an allocation
// that shows up in any run still fails the gate. Names are normalized
// via stripProcsSuffix first, so cross-machine reports compare.
func bestOf(benches []Benchmark) map[string]Benchmark {
	out := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		b.Name = stripProcsSuffix(b.Name)
		prev, seen := out[b.Name]
		if !seen {
			out[b.Name] = b
			continue
		}
		if b.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp > prev.BytesPerOp {
			prev.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp > prev.AllocsPerOp {
			prev.AllocsPerOp = b.AllocsPerOp
		}
		out[b.Name] = prev
	}
	return out
}

// compare diffs two reports benchmark by benchmark and writes a delta
// table. It returns the number of benchmarks whose ns/op regressed by
// more than thresholdPct, counting any allocs/op increase as a
// regression too (the zero-alloc hot path must stay zero-alloc).
func compare(old, new *Report, thresholdPct float64, w io.Writer) (regressions int, err error) {
	oldBy := bestOf(old.Benchmarks)
	newBy := bestOf(new.Benchmarks)
	names := make([]string, 0, len(newBy))
	for name := range newBy {
		names = append(names, name)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs\tverdict")
	matched := 0
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.1f\t-\t%d\tnew\n", name, nb.NsPerOp, nb.AllocsPerOp)
			continue
		}
		matched++
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		verdict := "ok"
		if delta > thresholdPct {
			verdict = "REGRESSION"
			regressions++
		} else if nb.AllocsPerOp > ob.AllocsPerOp {
			verdict = "ALLOC REGRESSION"
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%d -> %d\t%s\n",
			name, ob.NsPerOp, nb.NsPerOp, delta, ob.AllocsPerOp, nb.AllocsPerOp, verdict)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			fmt.Fprintf(tw, "%s\t%.1f\t-\t-\t-\tremoved\n", name, oldBy[name].NsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return regressions, err
	}
	if matched == 0 {
		return regressions, fmt.Errorf("no common benchmarks between the two reports")
	}
	fmt.Fprintf(w, "\n%d/%d benchmarks compared, %d regression(s) beyond %.0f%%\n",
		matched, len(names), regressions, thresholdPct)
	return regressions, nil
}

// runCompare handles `benchjson compare [-threshold N] old.json new.json`.
// Exit codes: 0 no regression, 1 usage/IO error, 2 regression found.
func runCompare(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "ns/op regression threshold in percent")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() != 2 {
		return 1, fmt.Errorf("usage: benchjson compare [-threshold N] old.json new.json")
	}
	old, err := readReport(fs.Arg(0))
	if err != nil {
		return 1, err
	}
	new, err := readReport(fs.Arg(1))
	if err != nil {
		return 1, err
	}
	regressions, err := compare(old, new, *threshold, stdout)
	if err != nil {
		return 1, err
	}
	if regressions > 0 {
		return 2, fmt.Errorf("%d benchmark(s) regressed", regressions)
	}
	return 0, nil
}

// benchCommand builds the `go test` invocation; a variable so tests
// can substitute a fake benchmark process.
var benchCommand = func(args []string) *exec.Cmd { return exec.Command("go", args...) }

// run executes the record mode. When the benchmark run itself fails
// (a failing test in the package, a crashed benchmark), the output
// produced before the failure is still parsed and written as a report
// — a long CI bench run should never evaporate because its last
// package broke — and the failure is then reported with a non-zero
// exit.
func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pkg := fs.String("pkg", "./...", "package pattern to benchmark")
	bench := fs.String("bench", ".", "benchmark regexp (go test -bench)")
	benchtime := fs.String("benchtime", "1x", "per-benchmark time or count (go test -benchtime)")
	count := fs.Int("count", 1, "repetitions (go test -count)")
	in := fs.String("in", "", "parse existing bench output from this file instead of running (- for stdin)")
	out := fs.String("out", "", "output file (default BENCH_<yyyy-mm-dd>.json)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	var raw io.Reader
	var runErr error
	if *in != "" {
		if *in == "-" {
			raw = os.Stdin
		} else {
			f, err := os.Open(*in)
			if err != nil {
				return 1, err
			}
			defer f.Close()
			raw = f
		}
	} else {
		goArgs := []string{"test", *pkg, "-run", "^$",
			"-bench", *bench, "-benchtime", *benchtime, "-benchmem",
			"-count", strconv.Itoa(*count)}
		rep.Command = "go " + strings.Join(goArgs, " ")
		fmt.Fprintln(stderr, "benchjson:", rep.Command)
		cmd := benchCommand(goArgs)
		cmd.Stderr = stderr
		outBytes, err := cmd.Output()
		if err != nil {
			runErr = fmt.Errorf("go test: %w", err)
			fmt.Fprintln(stderr, "benchjson:", runErr, "— salvaging completed benchmarks")
		}
		// Echo the raw output so CI logs keep the human-readable view.
		stdout.Write(outBytes)
		raw = bytes.NewReader(outBytes)
	}

	benches, err := parseBench(raw)
	if err != nil {
		return 1, err
	}
	if len(benches) == 0 {
		if runErr != nil {
			return 1, runErr
		}
		return 1, fmt.Errorf("no benchmark results found")
	}
	rep.Benchmarks = benches

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return 1, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return 1, err
	}
	if err := f.Close(); err != nil {
		return 1, err
	}
	fmt.Fprintf(stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(benches))
	if runErr != nil {
		return 1, fmt.Errorf("report salvaged to %s, but the run failed: %w", path, runErr)
	}
	return 0, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		code, err := runCompare(os.Args[2:], os.Stdout, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
		}
		os.Exit(code)
	}
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
