// Command benchjson runs the repository benchmarks and records the
// results as machine-readable JSON, one file per invocation, so runs
// can be diffed across commits (the CI smoke-bench uploads the file as
// an artifact).
//
// Usage:
//
//	benchjson                        # bench ./... 1x -> BENCH_<date>.json
//	benchjson -bench Fig -benchtime 2s -out bench.json
//	go test -bench . -benchmem ./... | benchjson -in -
//
// With -in, no benchmarks are run: existing `go test -bench -benchmem`
// output is parsed instead (use - for stdin).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Command    string      `json:"command,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench extracts benchmark lines from `go test -bench -benchmem`
// output. Lines that are not benchmark results (test chatter, pkg
// headers, PASS/ok) are ignored.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: f[0], Iterations: iters}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

func run() error {
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	bench := flag.String("bench", ".", "benchmark regexp (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark time or count (go test -benchtime)")
	count := flag.Int("count", 1, "repetitions (go test -count)")
	in := flag.String("in", "", "parse existing bench output from this file instead of running (- for stdin)")
	out := flag.String("out", "", "output file (default BENCH_<yyyy-mm-dd>.json)")
	flag.Parse()

	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	var raw io.Reader
	if *in != "" {
		if *in == "-" {
			raw = os.Stdin
		} else {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			raw = f
		}
	} else {
		args := []string{"test", *pkg, "-run", "^$",
			"-bench", *bench, "-benchtime", *benchtime, "-benchmem",
			"-count", strconv.Itoa(*count)}
		rep.Command = "go " + strings.Join(args, " ")
		fmt.Fprintln(os.Stderr, "benchjson:", rep.Command)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test: %w", err)
		}
		// Echo the raw output so CI logs keep the human-readable view.
		os.Stdout.Write(outBytes)
		raw = strings.NewReader(string(outBytes))
	}

	benches, err := parseBench(raw)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results found")
	}
	rep.Benchmarks = benches

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(benches))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
