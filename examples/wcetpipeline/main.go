// Wcetpipeline demonstrates the full tool chain on a hand-written
// program: build a structured control-flow tree, derive its task
// parameters with the static cache analysis (the repository's Heptane
// stand-in), wrap it into a two-task workload, bound the response
// times analytically, and finally run the cycle-accurate simulator to
// show the bounds hold.
//
// Run with:
//
//	go run ./examples/wcetpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/staticwcet"
	"repro/internal/taskmodel"
)

func main() {
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: 64, BlockSizeBytes: 32},
		DMem:     5,
		SlotSize: 2,
	}

	// A small "sensor filter": init code, a sampling loop over a
	// persistent kernel, and a reporting phase that aliases part of the
	// init code (64 sets apart), so some blocks are not persistent.
	filter := &program.Program{Name: "filter", Root: program.S(
		program.Straight(0, 6, 2),                 // init: blocks 0..5
		program.L(50, program.Straight(6, 10, 3)), // kernel: blocks 6..15
		program.Straight(64, 4, 2),                // report: aliases blocks 0..3
	)}

	// A background logger on the second core.
	logger := &program.Program{Name: "logger", Root: program.S(
		program.L(20, program.Straight(100, 12, 2)),
	)}

	fmt.Println("step 1: static WCET/cache analysis")
	var tasks []*taskmodel.Task
	var bindings []sim.TaskBinding
	for i, spec := range []struct {
		prog   *program.Program
		core   int
		period taskmodel.Time
	}{
		{filter, 0, 6000},
		{logger, 1, 9000},
	} {
		r, err := staticwcet.Analyze(spec.prog, plat.Cache)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s PD=%-6d MD=%-5d MD^r=%-5d |ECB|=%d |PCB|=%d |UCB|=%d\n",
			spec.prog.Name, r.PD, r.MD, r.MDr, r.ECB.Count(), r.PCB.Count(), r.UCB.Count())
		task := r.ToTask(spec.prog.Name, spec.core, i, spec.period, spec.period)
		tasks = append(tasks, task)
		bindings = append(bindings, sim.TaskBinding{Task: task, Prog: spec.prog})
	}
	ts := taskmodel.NewTaskSet(plat, tasks)

	fmt.Println("\nstep 2: WCRT analysis on the RR bus")
	for _, persistence := range []bool{false, true} {
		res, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: persistence})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  persistence=%v:", persistence)
		for _, tr := range res.Tasks {
			fmt.Printf("  R(%s)=%d", tr.Name, tr.WCRT)
		}
		fmt.Println()
	}

	fmt.Println("\nstep 3: cycle-accurate simulation (three hyperperiods)")
	simRes, err := sim.Run(plat, bindings, sim.Config{
		Policy:  sim.PolicyRR,
		Horizon: sim.HorizonForJobs(bindings, 3),
	})
	if err != nil {
		log.Fatal(err)
	}
	aware, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range aware.Tasks {
		st := simRes.Tasks[tr.Priority]
		fmt.Printf("  %-8s observed max R = %-6d analytical WCRT = %-6d (%.0f%% of bound), max misses/job = %d\n",
			st.Name, st.MaxResponse, tr.WCRT,
			100*float64(st.MaxResponse)/float64(tr.WCRT), st.MaxMissesPerJob)
		if st.MaxResponse > tr.WCRT {
			log.Fatalf("soundness violation for %s", st.Name)
		}
	}
	fmt.Println("\nall observed response times are within the analytical bounds.")
}
