// Paperexample replays the worked example of Section IV (Fig. 1 of the
// paper) and prints every intermediate quantity next to the value the
// paper derives: the CRPD γ_{2,1,x}, the multi-job demand M̂D, the
// CPRO ρ̂_{1,2,x}(3), and the same-core/remote access bounds with and
// without persistence awareness.
//
// Run with:
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/persistence"
)

func check(name string, got, want int64) {
	status := "ok"
	if got != want {
		status = "MISMATCH"
	}
	fmt.Printf("  %-38s = %-4d (paper: %d)  %s\n", name, got, want, status)
}

func main() {
	ts := fixtures.Fig1TaskSet()
	fmt.Println("Fig. 1 example: τ1, τ2 on core π_x; τ3 on core π_y; RR bus, s = 1")
	fmt.Println()

	// Analyzer with the example's remote response-time estimate for τ3
	// (four full jobs fit the analysed window of length 100).
	newAnalyzer := func(p bool) *core.Analyzer {
		a, err := core.NewAnalyzer(ts, core.Config{Arbiter: core.RR, Persistence: p})
		if err != nil {
			log.Fatal(err)
		}
		a.R[2] = 26
		return a
	}
	base := newAnalyzer(false)
	aware := newAnalyzer(true)
	const window = 100

	fmt.Println("cache persistence machinery:")
	t1 := ts.ByName("tau1")
	check("M̂D_1(3)  (Eq. 10)", persistence.MDHat(t1, 3), 8)
	check("ρ̂_{1,2,x}(3)  (Eq. 14)", persistence.RhoHat(ts, persistence.Union, 0, 1, 0, 3), 4)

	fmt.Println("\nbaseline analysis (Davis et al.):")
	check("BAS_2^x(R2)  (Eq. 12)", base.BAS(1, 0, window), 32)
	check("BAO_3^y(R2)  (Eq. 13)", base.BAO(2, 1, window), 24)
	check("BAT_2^x(R2)  (Eq. 11)", base.BAT(1, window), 56)

	fmt.Println("\npersistence-aware analysis (this paper):")
	check("B̂AS_2^x(R2)  (Eq. 15/16)", aware.BAS(1, 0, window), 26)
	check("B̂AO_3^y(R2)  (Lemma 2)", aware.BAO(2, 1, window), 9)
	check("B̂AT_2^x(R2)", aware.BAT(1, window), 35)

	fmt.Println()
	fmt.Println("The persistence-aware bound counts 35 bus accesses against the")
	fmt.Println("baseline's 56 for the same window: the three jobs of τ1 reload")
	fmt.Println("only memory block {9} plus the PCBs {5,6} evicted by τ2, and the")
	fmt.Println("four jobs of τ3 pay their full demand only once.")
}
