// Designspace walks a small design-space exploration for one workload:
// compare task-to-core partitioning heuristics, upgrade priorities
// from deadline-monotonic to Audsley's OPA where DM fails, and
// quantify the remaining margin with sensitivity analysis — all on top
// of the persistence-aware RR-bus analysis.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/opa"
	"repro/internal/partition"
	"repro/internal/taskgen"
)

func main() {
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 4
	cfg.TasksPerCore = 6
	cfg.CoreUtilization = 0.28
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}
	anaCfg := core.Config{Arbiter: core.RR, Persistence: true}

	fmt.Println("Design-space exploration under the persistence-aware RR analysis")
	fmt.Printf("(%d tasks, %d cores, per-core utilization %.2f)\n\n",
		len(ts.Tasks), cfg.Platform.NumCores, cfg.CoreUtilization)

	// 1. Partitioning heuristics.
	fmt.Println("1. task-to-core partitioning:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  placement\tschedulable\tPCB/ECB overlap score\tload spread")
	report := func(name string) (bool, error) {
		res, err := core.Analyze(ts, anaCfg)
		if err != nil {
			return false, err
		}
		loads := partition.Loads(ts)
		sort.Float64s(loads)
		fmt.Fprintf(tw, "  %s\t%v\t%d\t%.3f\n",
			name, res.Schedulable, partition.OverlapScore(ts), loads[len(loads)-1]-loads[0])
		return res.Schedulable, nil
	}
	if _, err := report("paper split (generator)"); err != nil {
		log.Fatal(err)
	}
	var bestSched bool
	for _, h := range []partition.Heuristic{partition.FirstFit, partition.WorstFit, partition.CacheAware} {
		if err := partition.Assign(ts, h); err != nil {
			log.Fatal(err)
		}
		ok, err := report(h.String())
		if err != nil {
			log.Fatal(err)
		}
		bestSched = bestSched || ok
	}
	tw.Flush()

	// Keep the cache-aware placement (assigned last) for the next steps.
	fmt.Println()

	// 2. Priority assignment: DM vs OPA.
	fmt.Println("2. priority assignment on the cache-aware placement:")
	dmRes, err := core.Analyze(ts, anaCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deadline monotonic: schedulable = %v\n", dmRes.Schedulable)
	opaRes, err := opa.Assign(ts, anaCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Audsley OPA:        schedulable = %v\n", opaRes.Schedulable)
	working := ts
	if opaRes.Schedulable {
		if working, err = opa.ApplyTo(ts, opaRes); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()

	// 3. Margin of the chosen design.
	fmt.Println("3. sensitivity of the chosen design:")
	maxD, err := core.MaxDMem(working, anaCfg, 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  largest schedulable d_mem:        %d (platform uses %d)\n", maxD, working.Platform.DMem)
	if k, err := core.CriticalScaling(working, anaCfg, 1e-3); err == nil {
		fmt.Printf("  critical period scaling:          %.3f (headroom below 1.0)\n", k)
	}
	baseK, errB := core.CriticalScaling(working, core.Config{Arbiter: core.RR}, 1e-3)
	if errB == nil {
		fmt.Printf("  same metric without persistence: %.3f\n", baseK)
	}
}
