// Arbitercomparison analyses one task set under all six analyses the
// paper compares (FP/RR/TDMA × persistence on/off) plus the perfect
// bus, and reports which combinations keep the set schedulable as the
// load is scaled up — a miniature of the paper's Fig. 2 for a single
// workload.
//
// Run with:
//
//	go run ./examples/arbitercomparison
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	buscon "repro"
)

func main() {
	plat := buscon.DefaultPlatform()
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		log.Fatal(err)
	}

	variants := []struct {
		name        string
		arb         buscon.Arbiter
		persistence bool
	}{
		{"FP", buscon.FP, false},
		{"FP-CP", buscon.FP, true},
		{"RR", buscon.RR, false},
		{"RR-CP", buscon.RR, true},
		{"TDMA", buscon.TDMA, false},
		{"TDMA-CP", buscon.TDMA, true},
		{"Reg-CP", buscon.Regulated, true},
		{"Par-CP", buscon.ParAware, true},
		{"Perfect", buscon.Perfect, true},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "per-core util")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v.name)
	}
	fmt.Fprintln(tw)

	for _, util := range []float64{0.15, 0.25, 0.35, 0.45, 0.55, 0.65} {
		ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
			Platform:        plat,
			TasksPerCore:    8,
			CoreUtilization: util,
		}, pool, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.2f", util)
		for _, v := range variants {
			res, err := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: v.arb, Persistence: v.persistence})
			if err != nil {
				log.Fatal(err)
			}
			mark := "yes"
			if !res.Schedulable {
				mark = "-"
			}
			fmt.Fprintf(tw, "\t%s", mark)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\n\"yes\" = the analysis proves every deadline; the persistence-aware")
	fmt.Println("columns extend each arbiter's schedulable range, and the FP bus")
	fmt.Println("outlives RR and TDMA, as in the paper's Fig. 2.")
}
