// Quickstart: generate random task sets the way the paper's
// evaluation does, then bound every task's worst-case response time on
// a Round-Robin bus with and without cache persistence awareness.
//
// Two loads are analysed: a light one where both analyses succeed (so
// the per-task tightening is visible) and a heavier one that only the
// persistence-aware analysis proves schedulable — the paper's headline
// effect.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	buscon "repro"
)

func analyze(ts *buscon.TaskSet, persistence bool) *buscon.Result {
	res, err := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: buscon.RR, Persistence: persistence})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// The paper's default platform: 4 cores, 256-set direct-mapped L1
	// instruction caches, d_mem = 5 cycles, RR/TDMA slot size 2.
	plat := buscon.DefaultPlatform()

	// Extract task parameters (PD, MD, MD^r, UCB/ECB/PCB) from the
	// built-in benchmark suite with the static cache analysis.
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		log.Fatal(err)
	}

	gen := func(util float64) *buscon.TaskSet {
		ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
			Platform:        plat,
			TasksPerCore:    8,
			CoreUtilization: util,
		}, pool, rand.New(rand.NewSource(2020)))
		if err != nil {
			log.Fatal(err)
		}
		return ts
	}

	// Light load: both analyses converge; compare the WCRT bounds.
	light := gen(0.15)
	baseline, aware := analyze(light, false), analyze(light, true)
	fmt.Println("RR bus, 32 tasks on 4 cores, per-core utilization 0.15:")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tcore\tdeadline\tWCRT baseline\tWCRT persistence-aware\ttightening")
	for i, b := range baseline.Tasks {
		a := aware.Tasks[i]
		gain := "-"
		if b.WCRT > 0 {
			gain = fmt.Sprintf("%.1f%%", 100*float64(b.WCRT-a.WCRT)/float64(b.WCRT))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n", b.Name, b.Core, b.Deadline, b.WCRT, a.WCRT, gain)
	}
	tw.Flush()

	// Heavier load: the baseline analysis aborts at its first provable
	// deadline miss, while the persistence-aware analysis still proves
	// the whole set schedulable.
	heavy := gen(0.30)
	baseline, aware = analyze(heavy, false), analyze(heavy, true)
	fmt.Println()
	fmt.Println("Same workload shape at per-core utilization 0.30:")
	fmt.Printf("  baseline analysis:          schedulable = %v\n", baseline.Schedulable)
	fmt.Printf("  persistence-aware analysis: schedulable = %v\n", aware.Schedulable)
	if !baseline.Schedulable && aware.Schedulable {
		fmt.Println()
		fmt.Println("Cache persistence awareness proves a task set schedulable that the")
		fmt.Println("baseline bus contention analysis rejects — the effect behind the")
		fmt.Println("paper's up-to-70-percentage-point schedulability improvements.")
	}
}
