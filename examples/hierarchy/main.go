// Hierarchy demonstrates the two-level cache extension (the paper's
// stated future work): the same workload is analysed and simulated
// with and without a private L2 per core. The L2 absorbs conflict-miss
// traffic, so the bus sees a fraction of the accesses and the
// persistence-aware WCRT bounds tighten accordingly.
//
// Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/staticwcet"
	"repro/internal/taskmodel"
)

// The workload: two cache-thrashing benchmarks per core whose
// footprints overflow a small L1 but fit the L2 comfortably.
var workload = []struct {
	bench  string
	core   int
	period taskmodel.Time
}{
	{"crc", 0, 60_000},
	{"fdct", 0, 90_000},
	{"adpcm", 1, 120_000},
	{"compress", 1, 150_000},
}

func main() {
	l1 := taskmodel.CacheConfig{NumSets: 64, BlockSizeBytes: 32}
	l2 := taskmodel.CacheConfig{NumSets: 512, BlockSizeBytes: 32, Associativity: 2}

	single := taskmodel.Platform{NumCores: 2, Cache: l1, DMem: 5, SlotSize: 2}
	double := single
	double.L2 = l2
	double.DL2 = 2

	fmt.Println("Two-level cache extension: same workload, with and without a private L2")
	fmt.Printf("L1: %d sets; L2: %d sets x %d ways, d_l2=%d; d_mem=%d\n\n",
		l1.NumSets, l2.NumSets, l2.Ways(), double.DL2, single.DMem)

	var tasksL1, tasksL2 []*taskmodel.Task
	var bindingsL1, bindingsL2 []sim.TaskBinding

	fmt.Println("per-benchmark bus demand (MD = bus accesses per cold job):")
	for prio, w := range workload {
		b, err := benchsuite.ByName(w.bench)
		if err != nil {
			log.Fatal(err)
		}
		r1, err := staticwcet.Analyze(b.Prog, l1)
		if err != nil {
			log.Fatal(err)
		}
		h, err := staticwcet.AnalyzeHierarchy(b.Prog, l1, l2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s L1-only MD=%-6d  with L2: bus MD=%d (exact %d), MD^r=%d, L2-persistent sets=%d\n",
			w.bench, r1.MD, h.MD, h.MDExact, h.MDr, h.PCB.Count())

		t1 := r1.ToTask(w.bench, w.core, prio, w.period, w.period)
		tasksL1 = append(tasksL1, t1)
		bindingsL1 = append(bindingsL1, sim.TaskBinding{Task: t1, Prog: b.Prog})

		// Hierarchy parameters: the bus only sees L2 misses; the
		// L1-miss/L2-hit latency is folded into the execution demand.
		t2 := &taskmodel.Task{
			Name: w.bench, Core: w.core, Priority: prio,
			PD: h.PD + taskmodel.Time(h.L1Misses)*double.DL2,
			MD: h.MD, MDr: h.MDr,
			Period: w.period, Deadline: w.period,
			UCB: h.UCB, ECB: h.ECB, PCB: h.PCB,
		}
		tasksL2 = append(tasksL2, t2)
		bindingsL2 = append(bindingsL2, sim.TaskBinding{Task: t2, Prog: b.Prog})
	}

	// Note: the hierarchy task set uses L2 geometry for its footprints.
	setL1 := taskmodel.NewTaskSet(single, tasksL1)
	platL2 := double
	platL2.Cache = l2 // analysis footprints live at L2 granularity
	platL2.L2 = taskmodel.CacheConfig{}
	platL2.DL2 = 0
	setL2 := taskmodel.NewTaskSet(platL2, tasksL2)

	fmt.Println("\npersistence-aware RR analysis:")
	for _, cse := range []struct {
		label string
		ts    *taskmodel.TaskSet
	}{{"L1 only", setL1}, {"L1 + L2", setL2}} {
		res, err := core.Analyze(cse.ts, core.Config{Arbiter: core.RR, Persistence: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s schedulable=%v  WCRTs:", cse.label, res.Schedulable)
		for _, tr := range res.Tasks {
			fmt.Printf(" %s=%d", tr.Name, tr.WCRT)
		}
		fmt.Println()
	}

	fmt.Println("\ncycle-accurate simulation (2 hyper-ish windows):")
	for _, cse := range []struct {
		label    string
		plat     taskmodel.Platform
		bindings []sim.TaskBinding
	}{{"L1 only", single, bindingsL1}, {"L1 + L2", double, bindingsL2}} {
		res, err := sim.Run(cse.plat, cse.bindings, sim.Config{
			Policy:  sim.PolicyRR,
			Horizon: sim.HorizonForJobs(cse.bindings, 2),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s bus accesses=%-6d bus busy=%.1f%%", cse.label, res.BusServe,
			100*float64(res.BusBusy)/float64(res.Cycles))
		var l2hits int64
		for _, st := range res.Tasks {
			l2hits += st.L2Hits
		}
		if cse.plat.HasL2() {
			fmt.Printf("  L2 hits=%d", l2hits)
		}
		fmt.Println()
	}
	fmt.Println("\nThe L2 absorbs the conflict misses that thrash the small L1, cutting")
	fmt.Println("both the analytical bus demand and the simulated bus traffic.")
}
