// Benchmarks regenerating every table and figure of the paper's
// evaluation (small sample sizes; the cmd/experiments binary runs the
// full-scale versions), plus ablation benches for the design choices
// called out in DESIGN.md.
package buscon_test

import (
	"io"
	"math/rand"
	"testing"

	buscon "repro"
	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/experiments"
	"repro/internal/opa"
	"repro/internal/persistence"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// benchOpts keeps per-iteration cost low while still sweeping the full
// parameter grids of the paper.
func benchOpts() experiments.Options {
	base := taskgen.DefaultConfig()
	base.Platform.NumCores = 2
	base.TasksPerCore = 4
	return experiments.Options{
		TaskSetsPerPoint: 3,
		Seed:             42,
		Utilizations:     []float64{0.2, 0.4, 0.6, 0.8},
		Base:             base,
	}
}

// BenchmarkTable1 regenerates Table I: static analysis of all sixteen
// benchmarks at the default geometry.
func BenchmarkTable1(b *testing.B) {
	cache := taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cache)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig2(b *testing.B, arb core.Arbiter) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(arb, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a: schedulability vs utilization, FP bus.
func BenchmarkFig2a(b *testing.B) { benchFig2(b, core.FP) }

// BenchmarkFig2b: schedulability vs utilization, RR bus.
func BenchmarkFig2b(b *testing.B) { benchFig2(b, core.RR) }

// BenchmarkFig2c: schedulability vs utilization, TDMA bus.
func BenchmarkFig2c(b *testing.B) { benchFig2(b, core.TDMA) }

// BenchmarkFig3a: weighted schedulability vs number of cores.
func BenchmarkFig3a(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3a(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3b: weighted schedulability vs memory reload time.
func BenchmarkFig3b(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3b(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3c: weighted schedulability vs cache size (parameters
// re-derived per geometry).
func BenchmarkFig3c(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3c(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3d: weighted schedulability vs RR/TDMA slot size.
func BenchmarkFig3d(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3d(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations --------------------------------------------------------------

func benchTaskSet(b *testing.B) *buscon.TaskSet {
	b.Helper()
	plat := buscon.DefaultPlatform()
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform: plat, TasksPerCore: 8, CoreUtilization: 0.5,
	}, pool, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkAblationCRPD compares the CRPD approaches (the paper uses
// ECB-union) under the RR-CP analysis.
func BenchmarkAblationCRPD(b *testing.B) {
	ts := benchTaskSet(b)
	for _, ap := range []crpd.Approach{crpd.ECBUnion, crpd.UCBOnly, crpd.ECBOnly, crpd.UCBUnion, crpd.Combined} {
		b.Run(ap.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: true, CRPD: ap}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCPRO compares the CPRO accountings (the paper uses
// CPRO-union; FullReload is the pessimistic bound, None the
// optimistic-unsound reference).
func BenchmarkAblationCPRO(b *testing.B) {
	ts := benchTaskSet(b)
	for _, ap := range []persistence.CPROApproach{persistence.Union, persistence.MultisetUnion, persistence.FullReload, persistence.None} {
		b.Run(ap.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: true, CPRO: ap}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationArbiter compares the raw analysis cost of each bus
// policy with persistence on and off.
func BenchmarkAblationArbiter(b *testing.B) {
	ts := benchTaskSet(b)
	for _, arb := range buscon.Arbiters() {
		for _, p := range []bool{false, true} {
			name := arb.String()
			if p {
				name += "-CP"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Analyze(ts, core.Config{Arbiter: arb, Persistence: p}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRegulatedSweep is a regulation-parameter design sweep on
// one task set — the regulated analogue of the slot-size sweep of
// Fig. 3d. Every (Q, P) point rebuilds the platform but reuses the
// task list; the per-point cost is dominated by the regulated BAT
// path and its replenishment breakpoints, which is exactly the new
// code the CI bench gate should watch.
func BenchmarkRegulatedSweep(b *testing.B) {
	ts := benchTaskSet(b)
	budgets := []int64{1, 2, 4, 8}
	periods := []buscon.Time{50, 100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range budgets {
			for _, p := range periods {
				plat := ts.Platform
				plat.RegBudget, plat.RegPeriod = q, p
				point := buscon.NewTaskSet(plat, ts.Tasks)
				if _, err := core.Analyze(point, core.Config{Arbiter: core.Regulated, Persistence: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSimulator measures the cycle-accurate simulator on a small
// generated workload (one hyper-ish window under RR arbitration).
func BenchmarkSimulator(b *testing.B) {
	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores: 2,
			Cache:    taskmodel.CacheConfig{NumSets: 64, BlockSizeBytes: 32},
			DMem:     5,
			SlotSize: 2,
		},
		TasksPerCore:    3,
		CoreUtilization: 0.3,
	}
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		b.Fatal(err)
	}
	// Restrict to small-trace benchmarks so a bench iteration stays
	// cheap.
	var small []taskgen.TaskParams
	for _, p := range pool {
		switch p.Name {
		case "lcdnum", "cnt", "qurt", "crc", "jfdctint":
			small = append(small, p)
		}
	}
	ts, err := taskgen.Generate(cfg, small, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	var bindings []sim.TaskBinding
	for _, task := range ts.Tasks {
		bench, err := benchByName(task.Name)
		if err != nil {
			b.Fatal(err)
		}
		bindings = append(bindings, sim.TaskBinding{Task: task, Prog: bench})
	}
	horizon := sim.HorizonForJobs(bindings, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg.Platform, bindings, sim.Config{Policy: sim.PolicyRR, Horizon: horizon}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchByName fetches a benchmark program for the simulator bench.
func benchByName(name string) (*program.Program, error) {
	b, err := benchsuite.ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Prog, nil
}

// --- extension benches -------------------------------------------------------

// BenchmarkExtAssoc runs the cache-organisation extension study.
func BenchmarkExtAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtAssociativity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCRPD runs the CRPD-approach ablation study.
func BenchmarkExtCRPD(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtCRPD(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPartition runs the partitioning-heuristic study.
func BenchmarkExtPartition(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtPartition(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPA measures Audsley's assignment search on a 16-task set.
func BenchmarkOPA(b *testing.B) {
	ts := benchTaskSet(b)
	cfg := core.Config{Arbiter: core.RR, Persistence: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opa.Assign(ts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity measures the d_mem edge search.
func BenchmarkSensitivity(b *testing.B) {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform: plat, TasksPerCore: 4, CoreUtilization: 0.25,
	}, pool, rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Arbiter: core.RR, Persistence: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaxDMem(ts, cfg, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
}
