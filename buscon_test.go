package buscon_test

import (
	"math/rand"
	"testing"

	buscon "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	plat := buscon.DefaultPlatform()
	if plat.NumCores != 4 || plat.Cache.NumSets != 256 || plat.DMem != 5 || plat.SlotSize != 2 {
		t.Fatalf("DefaultPlatform = %+v", plat)
	}
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatalf("BenchmarkPool: %v", err)
	}
	if len(pool) != 20 {
		t.Fatalf("pool size = %d, want 20", len(pool))
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform:        plat,
		TasksPerCore:    8,
		CoreUtilization: 0.3,
	}, pool, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("GenerateTaskSet: %v", err)
	}
	if len(ts.Tasks) != 32 {
		t.Fatalf("tasks = %d, want 32", len(ts.Tasks))
	}

	if arbs := buscon.Arbiters(); len(arbs) != 6 {
		t.Fatalf("Arbiters() = %v, want 6 declared arbiters", arbs)
	}
	for _, arb := range buscon.Arbiters() {
		base, err := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: arb})
		if err != nil {
			t.Fatalf("%v: %v", arb, err)
		}
		aware, err := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: arb, Persistence: true})
		if err != nil {
			t.Fatalf("%v: %v", arb, err)
		}
		if base.Schedulable && !aware.Schedulable {
			t.Errorf("%v: persistence-aware lost a baseline-schedulable set", arb)
		}
		if len(base.Tasks) != 32 || len(aware.Tasks) != 32 {
			t.Errorf("%v: result task counts %d/%d", arb, len(base.Tasks), len(aware.Tasks))
		}
	}
}

func TestFacadeNewTaskSet(t *testing.T) {
	plat := buscon.DefaultPlatform()
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatal(err)
	}
	p := pool[0]
	task := &buscon.Task{
		Name: p.Name, Core: 0, Priority: 0,
		PD: p.PD, MD: p.MD, MDr: p.MDr,
		Period: 1_000_000, Deadline: 1_000_000,
		UCB: p.UCB, ECB: p.ECB, PCB: p.PCB,
	}
	ts := buscon.NewTaskSet(plat, []*buscon.Task{task})
	res, err := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: buscon.FP, Persistence: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("single light task must be schedulable")
	}
	want := p.PD + buscon.Time(p.MD)*plat.DMem
	if got := res.Tasks[0].WCRT; got != want {
		t.Errorf("WCRT = %d, want isolated demand %d", got, want)
	}
}

func TestFacadeExplainAndSensitivity(t *testing.T) {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform: plat, TasksPerCore: 3, CoreUtilization: 0.2,
	}, pool, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := buscon.AnalysisConfig{Arbiter: buscon.RR, Persistence: true}

	ex, err := buscon.Explain(ts, cfg, ts.Tasks[len(ts.Tasks)-1].Priority)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.BAT <= 0 || ex.BusTime != buscon.Time(ex.BAT)*plat.DMem {
		t.Errorf("explanation inconsistent: %+v", ex)
	}

	maxD, err := buscon.MaxDMem(ts, cfg, 1<<14)
	if err != nil {
		t.Fatalf("MaxDMem: %v", err)
	}
	if maxD < plat.DMem {
		res, err := buscon.Analyze(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable {
			t.Errorf("MaxDMem %d below platform d_mem %d for a schedulable set", maxD, plat.DMem)
		}
	}

	k, err := buscon.CriticalScaling(ts, cfg, 1e-3)
	if err != nil {
		t.Fatalf("CriticalScaling: %v", err)
	}
	if k <= 0 {
		t.Errorf("CriticalScaling = %g", k)
	}
}

func TestFacadeSimulateSuite(t *testing.T) {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	plat.Cache.NumSets = 64
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict to small-trace benchmarks to keep the horizon cheap.
	var small []buscon.BenchmarkParams
	for _, p := range pool {
		switch p.Name {
		case "lcdnum", "cnt", "qurt":
			small = append(small, p)
		}
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform: plat, TasksPerCore: 2, CoreUtilization: 0.2,
	}, small, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := buscon.AnalysisConfig{Arbiter: buscon.RR, Persistence: true}
	ana, err := buscon.Analyze(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := buscon.SimulateSuite(ts, buscon.RR, 2)
	if err != nil {
		t.Fatalf("SimulateSuite: %v", err)
	}
	if simRes.DeadlineMisses != 0 && ana.Schedulable {
		t.Fatal("observed deadline misses for a schedulable set")
	}
	if ana.Schedulable {
		for _, tr := range ana.Tasks {
			if obs := simRes.MaxResponse[tr.Priority]; obs > tr.WCRT {
				t.Fatalf("task %s: observed %d > bound %d", tr.Name, obs, tr.WCRT)
			}
		}
	}
	if _, err := buscon.SimulateSuite(ts, buscon.Perfect, 1); err == nil {
		t.Fatal("Perfect arbiter accepted by the simulator")
	}
}

// TestArbiterCompletenessFacade drives every declared arbiter through
// each public entry point that switches on it. New arbiters must either
// be handled or rejected with a clean error; an engine panic or a
// silent wrong-policy fallthrough fails here before it can ship.
func TestArbiterCompletenessFacade(t *testing.T) {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	plat.Cache.NumSets = 64
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatal(err)
	}
	var small []buscon.BenchmarkParams
	for _, p := range pool {
		switch p.Name {
		case "lcdnum", "cnt", "qurt":
			small = append(small, p)
		}
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform: plat, TasksPerCore: 2, CoreUtilization: 0.2,
	}, small, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, arb := range buscon.Arbiters() {
		cfg := buscon.AnalysisConfig{Arbiter: arb, Persistence: true}
		if _, err := buscon.Analyze(ts, cfg); err != nil {
			t.Errorf("Analyze(%v): %v", arb, err)
		}
		if _, err := buscon.Explain(ts, cfg, ts.Tasks[len(ts.Tasks)-1].Priority); err != nil {
			t.Errorf("Explain(%v): %v", arb, err)
		}
		_, err := buscon.SimulateSuite(ts, arb, 1)
		if arb == buscon.Perfect {
			// The contention-free bus has no cycle-accurate counterpart;
			// the rejection must be an error, not a panic or a wrong
			// policy.
			if err == nil {
				t.Error("SimulateSuite(Perfect) did not reject")
			}
		} else if err != nil {
			t.Errorf("SimulateSuite(%v): %v", arb, err)
		}
	}
	// An out-of-range arbiter must be rejected everywhere, cleanly.
	bogus := buscon.AnalysisConfig{Arbiter: buscon.Arbiter(99)}
	if _, err := buscon.Analyze(ts, bogus); err == nil {
		t.Error("Analyze accepted an undeclared arbiter")
	}
	if _, err := buscon.Explain(ts, bogus, 0); err == nil {
		t.Error("Explain accepted an undeclared arbiter")
	}
	if _, err := buscon.SimulateSuite(ts, buscon.Arbiter(99), 1); err == nil {
		t.Error("SimulateSuite accepted an undeclared arbiter")
	}
}

func TestFacadeBatch(t *testing.T) {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []buscon.AnalysisConfig{
		{Arbiter: buscon.FP}, {Arbiter: buscon.FP, Persistence: true},
		{Arbiter: buscon.RR}, {Arbiter: buscon.RR, Persistence: true},
	}
	var reqs []buscon.BatchRequest
	var sets []*buscon.TaskSet
	for seed := int64(0); seed < 3; seed++ {
		ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
			Platform: plat, TasksPerCore: 4, CoreUtilization: 0.3,
		}, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, ts)
		reqs = append(reqs, buscon.BatchRequest{TS: ts, Cfgs: cfgs})
	}
	batch, err := buscon.AnalyzeBatch(reqs, 2)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(reqs))
	}
	for i, ts := range sets {
		all, err := buscon.AnalyzeAll(ts, cfgs)
		if err != nil {
			t.Fatalf("AnalyzeAll: %v", err)
		}
		for ci := range cfgs {
			single, err := buscon.Analyze(ts, cfgs[ci])
			if err != nil {
				t.Fatal(err)
			}
			if all[ci].Schedulable != single.Schedulable ||
				batch[i][ci].Schedulable != single.Schedulable {
				t.Errorf("set %d cfg %+v: verdicts disagree across entry points", i, cfgs[ci])
			}
		}
	}
}
