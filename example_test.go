package buscon_test

import (
	"fmt"
	"math/rand"

	buscon "repro"
)

// ExampleAnalyze reproduces the paper's headline comparison on one
// generated workload: the persistence-aware analysis accepts a task
// set the baseline rejects.
func ExampleAnalyze() {
	plat := buscon.DefaultPlatform()
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		panic(err)
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform:        plat,
		TasksPerCore:    8,
		CoreUtilization: 0.30,
	}, pool, rand.New(rand.NewSource(2020)))
	if err != nil {
		panic(err)
	}

	baseline, _ := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: buscon.RR})
	aware, _ := buscon.Analyze(ts, buscon.AnalysisConfig{Arbiter: buscon.RR, Persistence: true})
	fmt.Println("baseline schedulable:         ", baseline.Schedulable)
	fmt.Println("persistence-aware schedulable:", aware.Schedulable)
	// Output:
	// baseline schedulable:          false
	// persistence-aware schedulable: true
}

// ExampleExplain decomposes a WCRT bound into its interference terms.
func ExampleExplain() {
	plat := buscon.DefaultPlatform()
	plat.NumCores = 2
	pool, err := buscon.BenchmarkPool(plat.Cache)
	if err != nil {
		panic(err)
	}
	ts, err := buscon.GenerateTaskSet(buscon.GenConfig{
		Platform:        plat,
		TasksPerCore:    2,
		CoreUtilization: 0.2,
	}, pool, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	lowest := ts.Tasks[len(ts.Tasks)-1].Priority
	ex, err := buscon.Explain(ts, buscon.AnalysisConfig{Arbiter: buscon.RR, Persistence: true}, lowest)
	if err != nil {
		panic(err)
	}
	fmt.Println("decomposition adds up:", ex.BusTime == buscon.Time(ex.BAT)*plat.DMem)
	// Output:
	// decomposition adds up: true
}
